//! Streaming and batch statistics used by the workload feature extractor
//! (paper Sec. III-B: mean, SCV, skewness, autocorrelation of request
//! size and inter-arrival time) and by experiment metric collection.

use serde::{Deserialize, Serialize};

/// Welford online accumulator for mean / variance / skewness.
///
/// Numerically stable one-pass algorithm; third central moment is tracked
/// so skewness can be reported for trace fitting.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + delta * delta * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta.powi(3) * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Squared coefficient of variation: `var / mean^2` (0 when
    /// degenerate). The paper uses SCV as the key burstiness feature.
    pub fn scv(&self) -> f64 {
        let m = self.mean();
        if self.n < 2 || m == 0.0 {
            0.0
        } else {
            self.variance() / (m * m)
        }
    }
    /// Sample skewness `m3 / m2^(3/2) * sqrt(n)` (0 when degenerate).
    pub fn skewness(&self) -> f64 {
        if self.n < 3 || self.m2 <= 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        n.sqrt() * self.m3 / self.m2.powf(1.5)
    }
    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }
    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// Lag-`k` autocorrelation of a sample sequence (batch).
///
/// Returns 0 for sequences shorter than `k + 2` or with zero variance.
pub fn autocorrelation(xs: &[f64], k: usize) -> f64 {
    let n = xs.len();
    if n < k + 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let denom: f64 = xs.iter().map(|&x| (x - mean) * (x - mean)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = (0..n - k)
        .map(|i| (xs[i] - mean) * (xs[i + k] - mean))
        .sum();
    num / denom
}

/// Percentile of a sample (linear interpolation), `p` in `[0, 100]`.
/// Returns NaN for empty input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Batch mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Batch squared coefficient of variation.
pub fn scv(xs: &[f64]) -> f64 {
    let mut s = OnlineStats::new();
    for &x in xs {
        s.push(x);
    }
    s.scv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn scv_of_exponential_like() {
        // SCV of a constant sequence is 0.
        assert_eq!(scv(&[3.0; 10]), 0.0);
        // SCV formula check: var/mean^2.
        let xs = [1.0, 3.0];
        // mean 2, pop var 1 => scv 0.25
        assert!((scv(&xs) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.scv(), 0.0);
        assert_eq!(s.skewness(), 0.0);
        assert!(s.min().is_nan());
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert!((a.skewness() - whole.skewness()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let b = OnlineStats::new();
        let before = a.clone();
        a.merge(&b);
        assert_eq!(a.count(), before.count());
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn skewness_sign() {
        // Right-skewed data has positive skewness.
        let mut s = OnlineStats::new();
        for &x in &[1.0, 1.0, 1.0, 1.0, 10.0] {
            s.push(x);
        }
        assert!(s.skewness() > 0.0);
        // Left-skewed negative.
        let mut s2 = OnlineStats::new();
        for &x in &[10.0, 10.0, 10.0, 10.0, 1.0] {
            s2.push(x);
        }
        assert!(s2.skewness() < 0.0);
    }

    #[test]
    fn autocorr_basics() {
        // Alternating sequence has strong negative lag-1 autocorrelation.
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&xs, 1) < -0.9);
        // Constant sequence: zero variance => 0.
        assert_eq!(autocorrelation(&[5.0; 10], 1), 0.0);
        // Too short => 0.
        assert_eq!(autocorrelation(&[1.0, 2.0], 3), 0.0);
        // A slowly varying ramp has positive lag-1 autocorrelation.
        let ramp: Vec<f64> = (0..50).map(|i| (i as f64 / 10.0).sin()).collect();
        assert!(autocorrelation(&ramp, 1) > 0.5);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        // Out-of-range p clamps.
        assert_eq!(percentile(&xs, 150.0), 4.0);
        assert_eq!(percentile(&xs, -5.0), 1.0);
    }

    proptest::proptest! {
        #[test]
        fn prop_merge_any_split(xs in proptest::collection::vec(-1e3f64..1e3, 2..200), split in 0usize..200) {
            let split = split % xs.len();
            let mut whole = OnlineStats::new();
            for &x in &xs { whole.push(x); }
            let mut a = OnlineStats::new();
            let mut b = OnlineStats::new();
            for &x in &xs[..split] { a.push(x); }
            for &x in &xs[split..] { b.push(x); }
            a.merge(&b);
            proptest::prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
            proptest::prop_assert!((a.variance() - whole.variance()).abs() < 1e-4);
        }

        #[test]
        fn prop_percentile_within_range(xs in proptest::collection::vec(-1e3f64..1e3, 1..100), p in 0f64..100.0) {
            let v = percentile(&xs, p);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            proptest::prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}

/// Latency accumulator: streaming moments plus retained samples for
/// percentile reporting (runs here hold at most tens of thousands of
/// requests, so retaining samples is cheap and exact).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    online: OnlineStats,
    samples: Vec<f64>,
}

impl LatencyStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample.
    pub fn push(&mut self, v: f64) {
        self.online.push(v);
        self.samples.push(v);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.online.count()
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.online.mean()
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.online.std_dev()
    }

    /// Percentile `p` in [0, 100] (NaN when empty).
    pub fn percentile(&self, p: f64) -> f64 {
        percentile(&self.samples, p)
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Largest sample (NaN when empty).
    pub fn max(&self) -> f64 {
        self.online.max()
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    #[test]
    fn latency_stats_moments_and_percentiles() {
        let mut l = LatencyStats::new();
        for i in 1..=100 {
            l.push(i as f64);
        }
        assert_eq!(l.count(), 100);
        assert!((l.mean() - 50.5).abs() < 1e-12);
        assert!((l.p50() - 50.5).abs() < 1e-9);
        assert!((l.p99() - 99.01).abs() < 0.02);
        assert_eq!(l.max(), 100.0);
    }

    #[test]
    fn latency_stats_empty() {
        let l = LatencyStats::new();
        assert_eq!(l.mean(), 0.0);
        assert!(l.p50().is_nan());
        assert!(l.max().is_nan());
    }
}
