//! Deterministic discrete-event simulation substrate shared by every
//! simulator in this workspace.
//!
//! The crate provides four things:
//!
//! * [`SimTime`] / [`SimDuration`] — integer picosecond time base. At
//!   40 Gbps one byte serializes in exactly 200 ps, so integer time keeps
//!   every simulation bit-reproducible across platforms.
//! * [`EventQueue`] — a time-ordered event queue with a monotone sequence
//!   tie-breaker, so same-timestamp events are delivered in FIFO order.
//! * [`stats`] — streaming and batch statistics (mean, variance, squared
//!   coefficient of variation, skewness, autocorrelation, percentiles)
//!   used by the workload feature extractor and by metric collection.
//! * [`rate`] / [`series`] / [`token_bucket`] — data-rate arithmetic,
//!   time-binned series for per-millisecond throughput curves, and a
//!   token bucket used by NIC rate limiters.
//! * [`runner`] — the [`ScenarioRunner`] deterministic parallel sweep
//!   engine every experiment grid executes on, and [`telemetry`] —
//!   deterministic probes, sinks (including the streaming
//!   [`FileSink`]), and JSON-lines export.
//! * [`faults`] — the seeded, deterministic fault-injection vocabulary
//!   ([`FaultPlan`], [`FaultEvent`]) the simulators interpret; an empty
//!   plan injects nothing and changes nothing.
//! * [`checkpoint`] — durable sweep progress: a JSON-lines manifest of
//!   completed cells with fsynced appends, replayed by
//!   [`ScenarioRunner::run_cells_resumable`] so an interrupted grid
//!   resumes byte-identically, recomputing only missing cells
//!   (`SRCSIM_CHECKPOINT` env knob via [`CheckpointSpec::from_env`]).
//!
//! # Example
//!
//! ```
//! use sim_engine::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::from_us(2), "second");
//! q.schedule(SimTime::from_us(1), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_us(1), "first"));
//! ```

pub mod checkpoint;
pub mod faults;
pub mod queue;
pub mod rate;
pub mod rng;
pub mod runner;
pub mod series;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod token_bucket;
pub mod workspace;

pub use checkpoint::{CheckpointSpec, CHECKPOINT_ENV};
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultRng, FaultScope};
pub use queue::{AdaptiveEventQueue, EventQueue, HeapEventQueue, ADAPTIVE_MIGRATION_THRESHOLD};
pub use rate::{ByteSize, Rate};
pub use runner::ScenarioRunner;
pub use series::TimeBinSeries;
pub use telemetry::{
    FileSink, NullSink, ProbeBuffer, Reduced, Reduction, RingSink, TelemetryReport, TraceRecord,
    TraceSink,
};
pub use time::{SimDuration, SimTime};
pub use token_bucket::TokenBucket;
pub use workspace::{Scratch, SimWorkspace};
