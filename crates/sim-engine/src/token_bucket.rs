//! Byte token bucket used by NIC rate limiters.
//!
//! DCQCN reaction points shape traffic to a current rate `Rc`; the NIC
//! model asks this bucket "when may the next `n`-byte packet leave?".

use crate::rate::Rate;
use crate::time::{SimDuration, SimTime, PS_PER_SEC};

/// A deterministic byte token bucket.
///
/// Tokens accrue continuously at the configured [`Rate`]; the bucket depth
/// bounds burst size. All arithmetic is done in integer "bit-picoseconds"
/// so refill is exact and independent of call granularity.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate: Rate,
    /// Maximum accumulated tokens, in bits.
    depth_bits: u64,
    /// Available tokens, in bit * PS_PER_SEC units (scaled to avoid
    /// fractional refill).
    scaled_tokens: u128,
    last_update: SimTime,
}

impl TokenBucket {
    /// New bucket, initially full.
    pub fn new(rate: Rate, depth_bytes: u64) -> Self {
        let depth_bits = depth_bytes.saturating_mul(8).max(8);
        TokenBucket {
            rate,
            depth_bits,
            scaled_tokens: (depth_bits as u128) * (PS_PER_SEC as u128),
            last_update: SimTime::ZERO,
        }
    }

    /// Current shaping rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Change the shaping rate (tokens already accrued are kept).
    pub fn set_rate(&mut self, now: SimTime, rate: Rate) {
        self.refill(now);
        self.rate = rate;
    }

    fn cap(&self) -> u128 {
        (self.depth_bits as u128) * (PS_PER_SEC as u128)
    }

    fn refill(&mut self, now: SimTime) {
        if now <= self.last_update {
            return;
        }
        let dt = (now - self.last_update).as_ps() as u128;
        self.scaled_tokens = (self.scaled_tokens + dt * self.rate.as_bps() as u128).min(self.cap());
        self.last_update = now;
    }

    /// Try to consume `bytes` at `now`. On success returns `Ok(())`;
    /// otherwise returns the earliest time at which the send would be
    /// admissible (or `SimTime::MAX` if the rate is zero).
    pub fn try_consume(&mut self, now: SimTime, bytes: u64) -> Result<(), SimTime> {
        self.refill(now);
        let need = (bytes as u128) * 8 * (PS_PER_SEC as u128);
        if self.scaled_tokens >= need {
            self.scaled_tokens -= need;
            Ok(())
        } else if self.rate.as_bps() == 0 {
            Err(SimTime::MAX)
        } else {
            let deficit = need - self.scaled_tokens;
            let wait_ps = deficit.div_ceil(self.rate.as_bps() as u128);
            let wait = SimDuration::from_ps(wait_ps.min(u64::MAX as u128) as u64);
            Err(now + wait)
        }
    }

    /// Tokens currently available, in bytes (floor), after refilling to
    /// `now`.
    pub fn available_bytes(&mut self, now: SimTime) -> u64 {
        self.refill(now);
        (self.scaled_tokens / (PS_PER_SEC as u128) / 8).min(u64::MAX as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_drains() {
        let mut tb = TokenBucket::new(Rate::from_gbps(40), 1500);
        assert!(tb.try_consume(SimTime::ZERO, 1500).is_ok());
        // Bucket now empty; a second packet must wait exactly its
        // serialization time: 1500B at 40Gbps = 300ns.
        let err = tb.try_consume(SimTime::ZERO, 1500).unwrap_err();
        assert_eq!(err, SimTime::from_ns(300));
        // At that time the send succeeds.
        assert!(tb.try_consume(err, 1500).is_ok());
    }

    #[test]
    fn refill_caps_at_depth() {
        let mut tb = TokenBucket::new(Rate::from_gbps(1), 1000);
        assert!(tb.try_consume(SimTime::ZERO, 1000).is_ok());
        // After a long idle period tokens cap at depth, not more.
        assert_eq!(tb.available_bytes(SimTime::from_secs(10)), 1000);
        assert!(tb.try_consume(SimTime::from_secs(10), 1000).is_ok());
        assert!(tb.try_consume(SimTime::from_secs(10), 1).is_err());
    }

    #[test]
    fn zero_rate_blocks_forever() {
        let mut tb = TokenBucket::new(Rate::ZERO, 100);
        assert!(tb.try_consume(SimTime::ZERO, 100).is_ok()); // initial burst
        assert_eq!(tb.try_consume(SimTime::ZERO, 1).unwrap_err(), SimTime::MAX);
    }

    #[test]
    fn rate_change_preserves_tokens() {
        let mut tb = TokenBucket::new(Rate::from_gbps(10), 1000);
        assert!(tb.try_consume(SimTime::ZERO, 1000).is_ok());
        tb.set_rate(SimTime::from_ns(100), Rate::from_gbps(20));
        // 100ns at 10Gbps accrued = 125 bytes available.
        assert_eq!(tb.available_bytes(SimTime::from_ns(100)), 125);
    }

    #[test]
    fn long_run_rate_is_exact() {
        // Send back-to-back 1000B packets for 1ms at 8 Gbps: exactly
        // 1Mbit/ms / 8kbit = 1000 packets should fit (plus initial burst).
        let rate = Rate::from_gbps(8);
        let mut tb = TokenBucket::new(rate, 1000);
        let mut t = SimTime::ZERO;
        let mut sent = 0u64;
        while t < SimTime::from_ms(1) {
            match tb.try_consume(t, 1000) {
                Ok(()) => sent += 1,
                Err(next) => t = next,
            }
        }
        // 8Gbps for 1 ms = 1,000,000 bytes = 1000 packets; +1 initial burst.
        assert!((sent as i64 - 1001).abs() <= 1, "sent={sent}");
    }

    proptest::proptest! {
        /// The bucket never admits more than depth + rate*elapsed bytes.
        #[test]
        fn prop_conservation(pkts in proptest::collection::vec(1u64..3000, 1..100)) {
            let rate = Rate::from_gbps(10);
            let depth = 3000u64;
            let mut tb = TokenBucket::new(rate, depth);
            let mut t = SimTime::ZERO;
            let mut admitted = 0u64;
            for &p in &pkts {
                loop {
                    match tb.try_consume(t, p) {
                        Ok(()) => { admitted += p; break; }
                        Err(next) => t = next,
                    }
                }
            }
            let budget = depth + rate.bytes_in(t - SimTime::ZERO) + 1;
            proptest::prop_assert!(admitted <= budget,
                "admitted {admitted} > budget {budget}");
        }

        /// Mid-stream `set_rate` neither mints nor destroys tokens: a
        /// rate change at a fixed instant leaves the available tokens
        /// untouched, and the admitted total stays bounded by depth plus
        /// the rate integrated over each constant-rate segment.
        #[test]
        fn prop_set_rate_conserves_tokens(
            ops in proptest::collection::vec((0u8..2, 1u64..3000, 0usize..4), 1..80)
        ) {
            let rates = [
                Rate::from_gbps(1),
                Rate::from_gbps(5),
                Rate::from_gbps(10),
                Rate::from_gbps(40),
            ];
            let depth = 3000u64;
            let mut rate = Rate::from_gbps(10);
            let mut tb = TokenBucket::new(rate, depth);
            let mut t = SimTime::ZERO;
            let mut admitted = 0u64;
            // Exact integral of rate over time, in bit-picoseconds.
            let mut budget_bitps: u128 = 0;
            let mut seg_start = SimTime::ZERO;
            for &(kind, bytes, ridx) in &ops {
                if kind == 0 {
                    loop {
                        match tb.try_consume(t, bytes) {
                            Ok(()) => { admitted += bytes; break; }
                            Err(next) => t = next,
                        }
                    }
                } else {
                    let before = tb.available_bytes(t);
                    budget_bitps +=
                        ((t - seg_start).as_ps() as u128) * rate.as_bps() as u128;
                    seg_start = t;
                    rate = rates[ridx];
                    tb.set_rate(t, rate);
                    proptest::prop_assert_eq!(tb.available_bytes(t), before,
                        "rate change minted or destroyed tokens");
                }
            }
            budget_bitps += ((t - seg_start).as_ps() as u128) * rate.as_bps() as u128;
            let budget = depth + (budget_bitps / PS_PER_SEC as u128 / 8) as u64 + 1;
            proptest::prop_assert!(admitted <= budget,
                "admitted {admitted} > budget {budget}");
        }
    }
}
