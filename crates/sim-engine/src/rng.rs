//! Deterministic RNG plumbing.
//!
//! Every stochastic component in the workspace receives its randomness
//! from a seeded [`rand::rngs::StdRng`]. To keep independent components
//! decorrelated while staying reproducible, seeds are derived from a
//! master seed plus a component label via [`derive_seed`] (SplitMix64
//! finalizer over the label hash).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — a high-quality 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a stream seed from a master seed and a component label.
///
/// Deterministic: the same `(master, label)` pair always produces the
/// same seed, and different labels produce decorrelated streams.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut h = master ^ 0xA076_1D64_78BD_642F;
    for &b in label.as_bytes() {
        h = splitmix64(h ^ b as u64);
    }
    splitmix64(h)
}

/// Construct a [`StdRng`] for a named component stream.
pub fn stream_rng(master: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(42, "ssd"), derive_seed(42, "ssd"));
        let mut a = stream_rng(7, "net");
        let mut b = stream_rng(7, "net");
        let xa: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let xb: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(xa, xb);
    }

    #[test]
    fn labels_decorrelate() {
        assert_ne!(derive_seed(42, "ssd"), derive_seed(42, "net"));
        assert_ne!(derive_seed(42, "a"), derive_seed(43, "a"));
        // Similar labels still differ.
        assert_ne!(derive_seed(0, "target-0"), derive_seed(0, "target-1"));
    }

    #[test]
    fn empty_label_ok() {
        let s = derive_seed(1, "");
        assert_ne!(s, 1);
        assert_eq!(s, derive_seed(1, ""));
    }
}
