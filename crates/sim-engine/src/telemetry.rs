//! Deterministic telemetry: counters, gauges, and time-series probes
//! keyed by `(component, scope, metric)`, all stamped with [`SimTime`]
//! so two runs with the same seed produce byte-identical output.
//!
//! The design follows the workspace's caller-driven idiom: instrumented
//! components own a cheap [`ProbeBuffer`] (plain `Vec`, `Send`, no
//! interior mutability) and their *owners* drain it into a
//! [`TraceSink`] at deterministic points of the event loop. A disabled
//! buffer records nothing and costs one branch per probe, so the
//! simulators behave identically with telemetry on or off.
//!
//! Export is JSON lines (one object per line, keys in fixed order; see
//! DESIGN.md "Telemetry" for the schema): samples first in drain
//! order, then counters and gauges in sorted key order.

use crate::time::SimTime;
use serde::Value;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Identifies one metric stream: which subsystem, which instance of it
/// (flow id, target index, chip index, ...), and which quantity.
pub type MetricKey = (&'static str, u64, &'static str);

/// One timestamped observation from an instrumented component.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRecord {
    /// Simulation time of the observation.
    pub at: SimTime,
    /// Subsystem name (`"dcqcn"`, `"txq"`, `"ssq"`, `"src"`, `"ssd"`).
    pub component: &'static str,
    /// Instance within the subsystem (flow id, target index, ...).
    pub scope: u64,
    /// Metric name (`"rate_gbps"`, `"occupancy_bytes"`, ...).
    pub metric: &'static str,
    /// Observed value.
    pub value: f64,
}

impl TraceRecord {
    /// Lower to the JSON-lines sample object (fixed key order).
    fn to_value(self) -> Value {
        Value::Object(vec![
            ("kind".into(), Value::Str("sample".into())),
            ("t_ps".into(), Value::UInt(self.at.as_ps())),
            ("component".into(), Value::Str(self.component.into())),
            ("scope".into(), Value::UInt(self.scope)),
            ("metric".into(), Value::Str(self.metric.into())),
            ("value".into(), Value::Float(self.value)),
        ])
    }
}

/// One serialized JSON line for a counter or gauge (fixed key order —
/// shared by [`TelemetryReport::to_json_lines`] and [`FileSink`] so
/// both emit the same schema).
fn scalar_value(kind: &str, key: &MetricKey, value: Value) -> Value {
    Value::Object(vec![
        ("kind".into(), Value::Str(kind.into())),
        ("component".into(), Value::Str(key.0.into())),
        ("scope".into(), Value::UInt(key.1)),
        ("metric".into(), Value::Str(key.2.into())),
        ("value".into(), value),
    ])
}

/// Where drained records go. Implementations must be deterministic:
/// record order is the only order they may depend on. `Send` so
/// independent runs can stream into their own sinks from pool workers.
pub trait TraceSink: Send {
    /// Accept one record.
    fn record(&mut self, rec: TraceRecord);

    /// Bump a monotonic counter.
    fn count(&mut self, key: MetricKey, delta: u64);

    /// Set a gauge to its latest value.
    fn gauge(&mut self, key: MetricKey, value: f64);

    /// Whether this sink keeps anything. The sink-polymorphic run APIs
    /// consult this once up front to skip probe buffering entirely for
    /// [`NullSink`], so an untraced run does exactly the work it did
    /// before the traced/untraced entry points were collapsed.
    fn enabled(&self) -> bool {
        true
    }
}

/// Sink that discards everything (telemetry off).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: TraceRecord) {}
    fn count(&mut self, _key: MetricKey, _delta: u64) {}
    fn gauge(&mut self, _key: MetricKey, _value: f64) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// In-memory ring sink: keeps the most recent `capacity` samples (drops
/// the oldest, counting drops) plus all counters and gauges.
#[derive(Clone, Debug)]
pub struct RingSink {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    /// Samples evicted because the ring was full.
    dropped: u64,
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
}

impl RingSink {
    /// Ring holding at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            records: VecDeque::new(),
            dropped: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
        }
    }

    /// Samples evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Samples currently held.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Finish collection: move everything into a [`TelemetryReport`].
    pub fn into_report(self) -> TelemetryReport {
        TelemetryReport {
            records: self.records.into_iter().collect(),
            dropped: self.dropped,
            counters: self.counters,
            gauges: self.gauges,
        }
    }
}

impl Default for RingSink {
    /// Default ring: 1 Mi samples — comfortably above what the quick
    /// experiments emit, bounded for the full ones.
    fn default() -> Self {
        RingSink::new(1 << 20)
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }

    fn count(&mut self, key: MetricKey, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    fn gauge(&mut self, key: MetricKey, value: f64) {
        self.gauges.insert(key, value);
    }
}

/// The owned probe buffer instrumented components embed. `Send`, no
/// interior mutability: the owner drains it into a sink at
/// deterministic points (the `QueueDiscipline: Send` bound rules out
/// shared-`Rc` sinks inside components).
#[derive(Clone, Debug, Default)]
pub struct ProbeBuffer {
    enabled: bool,
    records: Vec<TraceRecord>,
}

impl ProbeBuffer {
    /// Enable or disable recording. Disabling clears pending records.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        if !on {
            self.records.clear();
        }
    }

    /// Is recording on?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one sample (no-op while disabled).
    #[inline]
    pub fn record(
        &mut self,
        at: SimTime,
        component: &'static str,
        scope: u64,
        metric: &'static str,
        value: f64,
    ) {
        if self.enabled {
            self.records.push(TraceRecord {
                at,
                component,
                scope,
                metric,
                value,
            });
        }
    }

    /// Pending sample count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// No pending samples?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Move all pending samples out, preserving order.
    pub fn drain(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }

    /// Move all pending samples into `sink`, preserving order.
    pub fn drain_into(&mut self, sink: &mut dyn TraceSink) {
        for rec in self.records.drain(..) {
            sink.record(rec);
        }
    }
}

/// Collected telemetry for one run: the sample stream plus final
/// counter and gauge values.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetryReport {
    /// Samples in drain order.
    pub records: Vec<TraceRecord>,
    /// Samples the sink evicted (ring overflow).
    pub dropped: u64,
    /// Monotonic counters, sorted by key.
    pub counters: BTreeMap<MetricKey, u64>,
    /// Last-value gauges, sorted by key.
    pub gauges: BTreeMap<MetricKey, f64>,
}

impl TelemetryReport {
    /// All samples of one `(component, metric)` stream as
    /// `(time, scope, value)` triples, in drain order.
    pub fn series(&self, component: &str, metric: &str) -> Vec<(SimTime, u64, f64)> {
        self.records
            .iter()
            .filter(|r| r.component == component && r.metric == metric)
            .map(|r| (r.at, r.scope, r.value))
            .collect()
    }

    /// Final value of one counter (0 when never bumped).
    pub fn counter(&self, key: MetricKey) -> u64 {
        self.counters.get(&key).copied().unwrap_or(0)
    }

    /// Distinct component names present in the sample stream, sorted.
    pub fn components(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.records.iter().map(|r| r.component).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Append another report's content (samples after ours, counters
    /// summed, gauges overwritten by `other`).
    pub fn merge(&mut self, other: TelemetryReport) {
        self.records.extend(other.records);
        self.dropped += other.dropped;
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.gauges {
            self.gauges.insert(k, v);
        }
    }

    /// Serialize to JSON lines: every sample in drain order, then
    /// counters, then gauges (both in sorted key order). Deterministic:
    /// same run → byte-identical string.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for rec in &self.records {
            out.push_str(&serde_json::to_string(&rec.to_value()).expect("static value"));
            out.push('\n');
        }
        for (key, v) in &self.counters {
            let line = scalar_value("counter", key, Value::UInt(*v));
            out.push_str(&serde_json::to_string(&line).expect("static value"));
            out.push('\n');
        }
        for (key, v) in &self.gauges {
            let line = scalar_value("gauge", key, Value::Float(*v));
            out.push_str(&serde_json::to_string(&line).expect("static value"));
            out.push('\n');
        }
        out
    }
}

/// Streaming sink: samples are serialized to a buffered JSON-lines
/// file as they arrive, so paper-scale runs trace to disk without the
/// [`RingSink`] evicting anything. Counters and gauges accumulate in
/// memory (they are tiny) and are appended by [`FileSink::finish`] in
/// sorted key order — the file then has exactly the
/// [`TelemetryReport::to_json_lines`] schema: samples in drain order,
/// then counters, then gauges.
///
/// I/O errors are latched: the first error stops further writes and is
/// returned by [`FileSink::finish`], keeping the hot `record` path
/// infallible for the event loop.
#[derive(Debug)]
pub struct FileSink {
    writer: std::io::BufWriter<std::fs::File>,
    samples: u64,
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    error: Option<std::io::Error>,
}

impl FileSink {
    /// Create (truncate) `path` and stream samples into it.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<FileSink> {
        Ok(FileSink {
            writer: std::io::BufWriter::new(std::fs::File::create(path)?),
            samples: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            error: None,
        })
    }

    /// Samples streamed so far.
    pub fn samples_written(&self) -> u64 {
        self.samples
    }

    /// Current value of one counter (0 when never bumped). Lets
    /// binaries print summary counters before [`FileSink::finish`]
    /// consumes the sink.
    pub fn counter(&self, key: MetricKey) -> u64 {
        self.counters.get(&key).copied().unwrap_or(0)
    }

    fn write_line(&mut self, line: &str) {
        use std::io::Write;
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }

    /// Append counters and gauges, flush, and return the total line
    /// count — or the first I/O error hit anywhere along the stream.
    pub fn finish(mut self) -> std::io::Result<u64> {
        let counters = std::mem::take(&mut self.counters);
        let gauges = std::mem::take(&mut self.gauges);
        let mut scalars = 0u64;
        for (key, v) in &counters {
            let line = serde_json::to_string(&scalar_value("counter", key, Value::UInt(*v)))
                .expect("static value");
            self.write_line(&line);
            scalars += 1;
        }
        for (key, v) in &gauges {
            let line = serde_json::to_string(&scalar_value("gauge", key, Value::Float(*v)))
                .expect("static value");
            self.write_line(&line);
            scalars += 1;
        }
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        use std::io::Write;
        self.writer.flush()?;
        Ok(self.samples + scalars)
    }
}

impl TraceSink for FileSink {
    fn record(&mut self, rec: TraceRecord) {
        let line = serde_json::to_string(&rec.to_value()).expect("static value");
        self.write_line(&line);
        self.samples += 1;
    }

    fn count(&mut self, key: MetricKey, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    fn gauge(&mut self, key: MetricKey, value: f64) {
        self.gauges.insert(key, value);
    }
}

/// How a [`Reduced`] stream folds the samples matching its
/// `(component, metric)` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reduction {
    /// Keep the smallest value seen.
    Min,
    /// Keep the largest value seen.
    Max,
    /// Keep the most recent value.
    Last,
    /// Keep every sample as `(time, scope, value)` — for sparse streams
    /// (weight changes, gate transitions) where the whole history is the
    /// summary. Unbounded: do not attach to a dense stream.
    Log,
}

/// One reducer stream inside a [`Reduced`] sink.
#[derive(Debug)]
struct ReducedStream {
    component: &'static str,
    metric: &'static str,
    kind: Reduction,
    count: u64,
    acc: f64,
    log: Vec<(SimTime, u64, f64)>,
}

/// Streaming reducers composable with any [`TraceSink`]: every record
/// passes through to the inner sink unchanged, while registered
/// `(component, metric)` streams fold into a min/max/last scalar or a
/// sample log on the fly. This is how `SRCSIM_TRACE` streaming mode
/// reports the series summaries (min DCQCN rate, max TXQ backlog, the
/// applied SSQ weight changes) that buffered mode reads back from the
/// in-memory [`RingSink`] report, without holding the sample stream in
/// memory.
#[derive(Debug)]
pub struct Reduced<S> {
    inner: S,
    streams: Vec<ReducedStream>,
}

impl<S: TraceSink> Reduced<S> {
    /// Wrap `inner`; register streams with [`Reduced::with`].
    pub fn new(inner: S) -> Self {
        Reduced {
            inner,
            streams: Vec::new(),
        }
    }

    /// Register a reducer over the `(component, metric)` sample stream
    /// (all scopes folded together).
    pub fn with(mut self, component: &'static str, metric: &'static str, kind: Reduction) -> Self {
        self.streams.push(ReducedStream {
            component,
            metric,
            kind,
            count: 0,
            acc: f64::NAN,
            log: Vec::new(),
        });
        self
    }

    fn stream(&self, component: &str, metric: &str) -> Option<&ReducedStream> {
        self.streams
            .iter()
            .find(|s| s.component == component && s.metric == metric)
    }

    /// Samples seen on a registered stream (0 for unregistered pairs).
    pub fn count_of(&self, component: &str, metric: &str) -> u64 {
        self.stream(component, metric).map_or(0, |s| s.count)
    }

    /// Folded value of a min/max/last stream; `None` before the first
    /// sample (and always for [`Reduction::Log`] streams).
    pub fn value_of(&self, component: &str, metric: &str) -> Option<f64> {
        self.stream(component, metric)
            .filter(|s| s.kind != Reduction::Log && s.count > 0)
            .map(|s| s.acc)
    }

    /// Collected samples of a [`Reduction::Log`] stream, in record
    /// order (empty for other kinds and unregistered pairs).
    pub fn log_of(&self, component: &str, metric: &str) -> &[(SimTime, u64, f64)] {
        self.stream(component, metric).map_or(&[], |s| &s.log)
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwrap, dropping the reducer state.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSink> TraceSink for Reduced<S> {
    fn record(&mut self, rec: TraceRecord) {
        for s in &mut self.streams {
            if s.component != rec.component || s.metric != rec.metric {
                continue;
            }
            match s.kind {
                Reduction::Min => {
                    s.acc = if s.count == 0 {
                        rec.value
                    } else {
                        s.acc.min(rec.value)
                    }
                }
                Reduction::Max => {
                    s.acc = if s.count == 0 {
                        rec.value
                    } else {
                        s.acc.max(rec.value)
                    }
                }
                Reduction::Last => s.acc = rec.value,
                Reduction::Log => s.log.push((rec.at, rec.scope, rec.value)),
            }
            s.count += 1;
        }
        self.inner.record(rec);
    }

    fn count(&mut self, key: MetricKey, delta: u64) {
        self.inner.count(key, delta);
    }

    fn gauge(&mut self, key: MetricKey, value: f64) {
        self.inner.gauge(key, value);
    }

    fn enabled(&self) -> bool {
        self.inner.enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ps: u64, scope: u64, value: f64) -> TraceRecord {
        TraceRecord {
            at: SimTime(ps),
            component: "dcqcn",
            scope,
            metric: "rate_gbps",
            value,
        }
    }

    #[test]
    fn probe_buffer_respects_enable() {
        let mut b = ProbeBuffer::default();
        b.record(SimTime(1), "x", 0, "m", 1.0);
        assert!(b.is_empty(), "disabled buffer must not record");
        b.set_enabled(true);
        b.record(SimTime(2), "x", 0, "m", 2.0);
        assert_eq!(b.len(), 1);
        b.set_enabled(false);
        assert!(b.is_empty(), "disabling clears pending records");
    }

    #[test]
    fn ring_drops_oldest() {
        let mut s = RingSink::new(2);
        for i in 0..5u64 {
            s.record(rec(i, 0, i as f64));
        }
        assert_eq!(s.dropped(), 3);
        let held: Vec<u64> = s.records().map(|r| r.at.as_ps()).collect();
        assert_eq!(held, vec![3, 4]);
    }

    #[test]
    fn report_series_and_counters() {
        let mut s = RingSink::new(16);
        s.record(rec(10, 1, 40.0));
        s.record(rec(20, 2, 38.5));
        s.record(rec(30, 1, 20.0));
        s.count(("dcqcn", 1, "cnp_rx"), 2);
        s.count(("dcqcn", 1, "cnp_rx"), 1);
        s.gauge(("ssq", 0, "weight"), 3.0);
        let rep = s.into_report();
        let series = rep.series("dcqcn", "rate_gbps");
        assert_eq!(series.len(), 3);
        assert_eq!(series[2], (SimTime(30), 1, 20.0));
        assert_eq!(rep.counter(("dcqcn", 1, "cnp_rx")), 3);
        assert_eq!(rep.counter(("dcqcn", 9, "cnp_rx")), 0);
        assert_eq!(rep.components(), vec!["dcqcn"]);
    }

    #[test]
    fn json_lines_deterministic_and_parseable() {
        let build = || {
            let mut s = RingSink::new(8);
            s.record(rec(1_000_000, 0, 39.25));
            s.count(("txq", 0, "gate_closures"), 4);
            s.gauge(("ssq", 1, "weight"), 2.0);
            s.into_report()
        };
        let a = build().to_json_lines();
        let b = build().to_json_lines();
        assert_eq!(a, b, "same input must serialize byte-identically");
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v: Value = serde_json::from_str(line).expect("valid JSON");
            assert!(v.get("kind").is_some());
        }
        assert!(lines[0].starts_with("{\"kind\":\"sample\",\"t_ps\":1000000,"));
        assert!(lines[1].contains("\"kind\":\"counter\""));
        assert!(lines[2].contains("\"kind\":\"gauge\""));
    }

    #[test]
    fn file_sink_matches_ring_sink_bytes() {
        let feed = |sink: &mut dyn TraceSink| {
            sink.record(rec(1_000, 0, 39.25));
            sink.record(rec(2_000, 1, 12.5));
            sink.count(("txq", 0, "gate_closures"), 4);
            sink.count(("net", 0, "cnps_sent"), 2);
            sink.gauge(("ssq", 1, "weight"), 2.0);
        };
        let mut ring = RingSink::new(16);
        feed(&mut ring);
        let expected = ring.into_report().to_json_lines();

        let path =
            std::env::temp_dir().join(format!("srcsim_filesink_test_{}.jsonl", std::process::id()));
        let mut file = FileSink::create(&path).expect("create sink file");
        feed(&mut file);
        assert_eq!(file.samples_written(), 2);
        assert_eq!(file.counter(("net", 0, "cnps_sent")), 2);
        let lines = file.finish().expect("finish sink");
        let got = std::fs::read_to_string(&path).expect("read sink file");
        let _ = std::fs::remove_file(&path);
        assert_eq!(lines, 5);
        assert_eq!(got, expected, "FileSink must emit the RingSink schema");
    }

    #[test]
    fn reducers_fold_and_pass_through() {
        let mut sink = Reduced::new(RingSink::new(16))
            .with("dcqcn", "rate_gbps", Reduction::Min)
            .with("dcqcn", "rate_gbps_max", Reduction::Max)
            .with("ssq", "weight", Reduction::Log)
            .with("dcqcn", "alpha", Reduction::Last);
        sink.record(rec(10, 1, 40.0));
        sink.record(rec(20, 2, 12.5));
        sink.record(rec(30, 1, 25.0));
        sink.record(TraceRecord {
            at: SimTime(40),
            component: "ssq",
            scope: 0,
            metric: "weight",
            value: 4.0,
        });
        sink.record(TraceRecord {
            at: SimTime(50),
            component: "ssq",
            scope: 0,
            metric: "weight",
            value: 2.0,
        });
        sink.record(TraceRecord {
            at: SimTime(60),
            component: "dcqcn",
            scope: 1,
            metric: "alpha",
            value: 0.5,
        });
        sink.count(("net", 0, "cnps_sent"), 3);
        assert_eq!(sink.count_of("dcqcn", "rate_gbps"), 3);
        assert_eq!(sink.value_of("dcqcn", "rate_gbps"), Some(12.5));
        assert_eq!(sink.value_of("dcqcn", "alpha"), Some(0.5));
        assert_eq!(sink.value_of("ssq", "weight"), None, "log has no scalar");
        assert_eq!(
            sink.log_of("ssq", "weight"),
            &[(SimTime(40), 0, 4.0), (SimTime(50), 0, 2.0)]
        );
        assert_eq!(sink.value_of("txq", "backlog_bytes"), None);
        // Everything reached the inner sink untouched.
        let rep = sink.into_inner().into_report();
        assert_eq!(rep.records.len(), 6);
        assert_eq!(rep.counter(("net", 0, "cnps_sent")), 3);
    }

    #[test]
    fn reduced_file_sink_bytes_unchanged() {
        // Wrapping a FileSink in reducers must not perturb the trace.
        let feed = |sink: &mut dyn TraceSink| {
            sink.record(rec(1_000, 0, 39.25));
            sink.record(rec(2_000, 1, 12.5));
            sink.count(("txq", 0, "gate_closures"), 4);
            sink.gauge(("ssq", 1, "weight"), 2.0);
        };
        let dir = std::env::temp_dir();
        let plain_path = dir.join(format!("srcsim_reduced_a_{}.jsonl", std::process::id()));
        let wrapped_path = dir.join(format!("srcsim_reduced_b_{}.jsonl", std::process::id()));
        let mut plain = FileSink::create(&plain_path).expect("create");
        feed(&mut plain);
        plain.finish().expect("finish");
        let mut wrapped = Reduced::new(FileSink::create(&wrapped_path).expect("create")).with(
            "dcqcn",
            "rate_gbps",
            Reduction::Min,
        );
        feed(&mut wrapped);
        assert_eq!(wrapped.value_of("dcqcn", "rate_gbps"), Some(12.5));
        wrapped.into_inner().finish().expect("finish");
        let a = std::fs::read_to_string(&plain_path).expect("read");
        let b = std::fs::read_to_string(&wrapped_path).expect("read");
        let _ = std::fs::remove_file(&plain_path);
        let _ = std::fs::remove_file(&wrapped_path);
        assert_eq!(a, b, "reducers must be invisible to the stream");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = TelemetryReport::default();
        let mut b = TelemetryReport::default();
        a.counters.insert(("ssd", 0, "reads"), 5);
        b.counters.insert(("ssd", 0, "reads"), 7);
        b.records.push(rec(1, 0, 1.0));
        a.merge(b);
        assert_eq!(a.counter(("ssd", 0, "reads")), 12);
        assert_eq!(a.records.len(), 1);
    }
}
