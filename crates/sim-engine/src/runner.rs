//! [`ScenarioRunner`] — the deterministic parallel sweep engine every
//! experiment grid in the workspace runs on (Fig. 5 weight sweeps, the
//! Table I/III model grids, the Fig. 7–10 system campaigns, random-
//! forest training and cross-validation).
//!
//! # Determinism contract
//!
//! The paper's evaluation is an embarrassingly parallel set of
//! independent seeded simulations, so parallelism must never change
//! results. The runner enforces the two rules that guarantee it:
//!
//! 1. **Seeds derive from `(base_seed, cell_index)` only** — never
//!    from thread identity, completion order, or shared mutable state.
//!    [`cell_seed`] is the canonical SplitMix64 derivation;
//!    [`ScenarioRunner::run_seeded`] applies it for you. Callers with
//!    a legacy derivation (e.g. `seed.wrapping_add(index)`) keep it,
//!    as long as it is a pure function of the index.
//! 2. **Results are written back by cell index**, not completion
//!    order: `run(n, f)` returns exactly `(0..n).map(f).collect()`.
//!
//! Under these rules a run at `threads = 4` is byte-identical to
//! `threads = 1` — asserted by `tests/parallel_determinism.rs` at the
//! workspace root.
//!
//! # Thread budget
//!
//! [`ScenarioRunner::from_env`] resolves `SRCSIM_THREADS` (preferred)
//! or `RAYON_NUM_THREADS`, defaulting to the machine's available
//! parallelism; `threads = 1` runs inline with no threads spawned.
//! Cells that themselves use a runner (a sweep of sweeps, forest
//! training inside a grid cell) automatically run serially inside pool
//! workers, so the process never exceeds the configured budget.

use crate::workspace::SimWorkspace;
use rayon::pool;

/// Deterministic parallel executor for independent scenario cells.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioRunner {
    threads: usize,
}

impl ScenarioRunner {
    /// Thread budget from the environment (`SRCSIM_THREADS`, then
    /// `RAYON_NUM_THREADS`, then available parallelism) — or from the
    /// innermost [`with_threads`] scope, which takes precedence.
    pub fn from_env() -> Self {
        ScenarioRunner {
            threads: pool::current_num_threads(),
        }
    }

    /// The serial reference executor (`threads = 1`).
    pub fn serial() -> Self {
        ScenarioRunner { threads: 1 }
    }

    /// Explicit thread budget (minimum 1).
    pub fn with_threads(threads: usize) -> Self {
        ScenarioRunner {
            threads: threads.max(1),
        }
    }

    /// Configured thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluate `f(0..n)` on the pool; results in index order,
    /// identical to the serial `(0..n).map(f).collect()`.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        pool::with_threads(self.threads, || pool::run_indexed(n, f))
    }

    /// Evaluate `f(index, &cell)` for every cell of a grid; results in
    /// cell order.
    pub fn run_cells<C, T, F>(&self, cells: &[C], f: F) -> Vec<T>
    where
        C: Sync,
        T: Send,
        F: Fn(usize, &C) -> T + Sync,
    {
        self.run(cells.len(), |i| f(i, &cells[i]))
    }

    /// Evaluate `f(index, cell_seed(base_seed, index))` for every cell:
    /// the canonical seeded sweep. Results in index order.
    pub fn run_seeded<T, F>(&self, base_seed: u64, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, u64) -> T + Sync,
    {
        self.run(n, |i| f(i, cell_seed(base_seed, i as u64)))
    }

    /// [`ScenarioRunner::run`] with per-worker reusable state: each
    /// worker thread holds one [`SimWorkspace`] and hands it to `f` for
    /// every cell that worker claims, so cell-local allocations (event
    /// queues, step pools, caches) amortize across the sweep. The
    /// workspace [`reset` contract](crate::workspace) keeps results
    /// byte-identical to the workspace-free form at any thread count.
    pub fn run_with_workspace<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut SimWorkspace, usize) -> T + Sync,
    {
        pool::with_threads(self.threads, || {
            pool::run_indexed_with(n, SimWorkspace::new, f)
        })
    }

    /// [`ScenarioRunner::run_cells`] with per-worker reusable state
    /// (see [`ScenarioRunner::run_with_workspace`]).
    pub fn run_cells_with_workspace<C, T, F>(&self, cells: &[C], f: F) -> Vec<T>
    where
        C: Sync,
        T: Send,
        F: Fn(&mut SimWorkspace, usize, &C) -> T + Sync,
    {
        self.run_with_workspace(cells.len(), |ws, i| f(ws, i, &cells[i]))
    }
}

impl Default for ScenarioRunner {
    fn default() -> Self {
        ScenarioRunner::from_env()
    }
}

/// SplitMix64 per-cell seed derivation: decorrelates cells drawn from
/// one base seed while staying a pure function of `(base_seed, index)`
/// — the property the determinism contract requires. (Identical to the
/// derivation random-forest training has used since the seed PR, so
/// trained models are unchanged.)
pub fn cell_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scope `f` to an `n`-thread budget: every [`ScenarioRunner::from_env`]
/// and raw `rayon` call inside sees `n` threads. Restored on exit,
/// panic-safe. The determinism tests use this to compare serial and
/// parallel runs in one process without touching the environment.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    pool::with_threads(n, f)
}

/// Run two independent closures, in parallel when the budget allows,
/// and return `(a(), b())`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pool::join(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_preserves_index_order_under_parallelism() {
        // Later cells are cheaper, so they finish first; order must hold.
        let runner = ScenarioRunner::with_threads(4);
        let out = runner.run(12, |i| {
            std::thread::sleep(std::time::Duration::from_micros(((12 - i) * 40) as u64));
            i as u64 * 7
        });
        assert_eq!(out, (0..12).map(|i| i * 7).collect::<Vec<u64>>());
    }

    #[test]
    fn serial_and_parallel_identical() {
        let work = |runner: ScenarioRunner| {
            runner.run_seeded(42, 10, |i, seed| (i, seed, seed.rotate_left(i as u32)))
        };
        assert_eq!(
            work(ScenarioRunner::serial()),
            work(ScenarioRunner::with_threads(4))
        );
    }

    #[test]
    fn run_cells_passes_index_and_cell() {
        let cells = vec!["a", "b", "c"];
        let out = ScenarioRunner::with_threads(2).run_cells(&cells, |i, &c| format!("{i}{c}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn cell_seed_is_pure_and_decorrelated() {
        assert_eq!(cell_seed(7, 3), cell_seed(7, 3));
        assert_ne!(cell_seed(7, 3), cell_seed(7, 4));
        assert_ne!(cell_seed(7, 3), cell_seed(8, 3));
        // Regression pin: forest training has derived per-tree seeds
        // with exactly this function since the seed PR; changing it
        // would silently retrain every model.
        let mut z: u64 = 7u64
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(3u64.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        assert_eq!(cell_seed(7, 3), z ^ (z >> 31));
    }

    #[test]
    fn panic_in_cell_reaches_caller_and_runner_survives() {
        let runner = ScenarioRunner::with_threads(4);
        let boom = std::panic::catch_unwind(|| {
            runner.run(6, |i| {
                if i == 2 {
                    panic!("cell 2 failed");
                }
                i
            })
        });
        assert!(boom.is_err());
        assert_eq!(runner.run(6, |i| i), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn nested_runner_is_serial_and_correct() {
        let outer = ScenarioRunner::with_threads(4);
        let out = out_nested(&outer);
        assert_eq!(out, vec![vec![0, 1], vec![10, 11], vec![20, 21]]);
    }

    fn out_nested(outer: &ScenarioRunner) -> Vec<Vec<usize>> {
        outer.run(3, |i| {
            let inner = ScenarioRunner::from_env();
            assert_eq!(inner.threads(), 1, "nested runner must fall back to serial");
            inner.run(2, |j| i * 10 + j)
        })
    }

    #[test]
    fn with_threads_scopes_from_env() {
        let t = with_threads(3, || ScenarioRunner::from_env().threads());
        assert_eq!(t, 3);
    }
}
