//! Integer picosecond time base.
//!
//! All simulators in the workspace share this representation. Picoseconds
//! were chosen because link serialization times divide evenly: one byte at
//! 40 Gbps is exactly 200 ps, at 100 Gbps exactly 80 ps. A `u64` of
//! picoseconds covers ~213 simulated days, far beyond any experiment here.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An absolute simulation timestamp in integer picoseconds since the
/// start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time in integer picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable timestamp (useful as an "infinity").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }
    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }
    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }
    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_SEC)
    }

    /// Raw picosecond value.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Time as fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// Time as fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Time as fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Elapsed duration since `earlier`; saturates at zero if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Timestamp saturating-subtraction of a duration (clamps at zero).
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }
    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }
    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }
    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }
    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_SEC)
    }
    /// Construct from fractional microseconds (rounded to ps).
    pub fn from_us_f64(us: f64) -> Self {
        SimDuration((us * PS_PER_US as f64).round().max(0.0) as u64)
    }
    /// Construct from fractional nanoseconds (rounded to ps).
    pub fn from_ns_f64(ns: f64) -> Self {
        SimDuration((ns * PS_PER_NS as f64).round().max(0.0) as u64)
    }

    /// Raw picosecond value.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Duration as fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Duration as fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Multiply by an integer factor (saturating).
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_secs(1).as_ps(), PS_PER_SEC);
        assert!((SimTime::from_us(1500).as_ms_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_us(10) + SimDuration::from_us(5);
        assert_eq!(t, SimTime::from_us(15));
        assert_eq!(t - SimTime::from_us(10), SimDuration::from_us(5));
        let mut d = SimDuration::from_ns(100);
        d += SimDuration::from_ns(50);
        assert_eq!(d, SimDuration::from_ns(150));
        d -= SimDuration::from_ns(150);
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_us(1);
        let late = SimTime::from_us(2);
        assert_eq!(late.since(early), SimDuration::from_us(1));
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::from_us(1).saturating_sub(SimDuration::from_us(5)),
            SimTime::ZERO
        );
        assert_eq!(SimDuration::MAX.saturating_mul(2), SimDuration::MAX);
    }

    #[test]
    fn fractional_constructors_round() {
        assert_eq!(SimDuration::from_us_f64(1.5).as_ps(), 1_500_000);
        assert_eq!(SimDuration::from_ns_f64(0.2).as_ps(), 200);
        assert_eq!(SimDuration::from_us_f64(-3.0).as_ps(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_us(2)), "2.000us");
        assert_eq!(format!("{:?}", SimDuration::from_ns(1500)), "1.500us");
    }
}
