//! Time-ordered event queue with deterministic FIFO tie-breaking.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending event: ordered by `(time, seq)` so that events scheduled at
/// the same timestamp are delivered in the order they were scheduled.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The central data structure of every simulator in this workspace: a
/// priority queue of `(SimTime, E)` pairs delivering events in
/// nondecreasing time order, FIFO among equal timestamps.
///
/// Determinism matters: the simulators seed all their RNGs and rely on
/// this queue never reordering same-time events, so a run is a pure
/// function of its configuration and seed.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    /// Highest timestamp ever popped; used to catch causality violations.
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// In debug builds, panics if `at` is earlier than the most recently
    /// popped timestamp (scheduling into the past breaks causality).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.last_popped,
            "scheduling into the past: {at:?} < {:?}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            event,
        }));
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.last_popped = e.time;
        Some((e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(3), 'c');
        q.schedule(SimTime::from_us(1), 'a');
        q.schedule(SimTime::from_us(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_us(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_ns(5), ());
        q.schedule(SimTime::from_ns(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(2)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), ());
        q.pop();
        q.schedule(SimTime::from_us(5), ());
    }

    #[test]
    fn interleaved_schedule_pop_is_stable() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(1);
        q.schedule(t, 1);
        q.schedule(t, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(t, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    proptest::proptest! {
        /// Popped timestamps are nondecreasing and equal-time events keep
        /// their insertion order, for arbitrary schedules.
        #[test]
        fn prop_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_ps(t), i);
            }
            let mut last = (SimTime::ZERO, 0usize);
            let mut popped = 0;
            while let Some((t, i)) = q.pop() {
                popped += 1;
                proptest::prop_assert!(t >= last.0);
                if t == last.0 && popped > 1 {
                    proptest::prop_assert!(i > last.1);
                }
                proptest::prop_assert_eq!(SimTime::from_ps(times[i]), t);
                last = (t, i);
            }
            proptest::prop_assert_eq!(popped, times.len());
            // keep SimDuration import used
            let _ = SimDuration::ZERO;
        }
    }
}
