//! Time-ordered event queue with deterministic FIFO tie-breaking.
//!
//! Two implementations share one contract (nondecreasing pop times,
//! FIFO among equal timestamps via a monotone sequence number, debug
//! causality check):
//!
//! * [`EventQueue`] — the production queue: a hierarchical timing wheel
//!   with amortized O(1) schedule/pop, plus a binary-heap calendar
//!   overflow for timers beyond the wheel horizon. Every simulator's
//!   event loop drains through this.
//! * [`HeapEventQueue`] — the original `BinaryHeap` queue, kept as the
//!   executable reference model: the property tests drive both with the
//!   same interleavings and require identical pop sequences, and the
//!   perf suite uses it as the baseline the wheel is measured against.
//!
//! # Wheel design
//!
//! Time is integer picoseconds ([`SimTime`]). The wheel has
//! [`LEVELS`] = 7 levels of 64 slots; level `l` slots are `64^l` ps
//! wide, so one full rotation covers `64^7 = 2^42` ps ≈ 4.4 s of
//! simulated time relative to the current wheel position — far beyond
//! any timer the simulators arm (DCQCN timers are µs-scale, SSD erases
//! ms-scale). Events whose time differs from the wheel position above
//! bit 42 go to the overflow heap and migrate into the wheel when the
//! wheel catches up (each event migrates at most once).
//!
//! `schedule` picks the level from the highest differing 6-bit group
//! between the event time and the wheel position (`elapsed`): one XOR,
//! one `leading_zeros`, one push. `pop` finds the lowest nonempty
//! level's lowest slot through per-level occupancy bitmaps
//! (`trailing_zeros`); level-0 slots are one picosecond wide, so a
//! drained slot is a batch of equal-time events sorted by sequence
//! number — FIFO for free. Higher-level slots cascade: their events
//! redistribute to lower levels as the wheel position advances, at most
//! once per level per event, which gives the amortized O(1) bound.
//!
//! Slot vectors, the delivery batch, and the cascade scratch buffer are
//! all reused across operations, so a warmed-up queue schedules and
//! pops without allocating.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending event: ordered by `(time, seq)` so that events scheduled at
/// the same timestamp are delivered in the order they were scheduled.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Bits per wheel level: 64 slots.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Mask selecting one level's slot index.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Wheel levels. Level `l` slots are `64^l` ps wide; the whole wheel
/// spans `2^(6*7) = 2^42` ps (≈ 4.4 s) relative to its position.
const LEVELS: usize = 7;
/// Bits covered by the wheel; times differing from `elapsed` at or
/// above this bit live in the overflow heap.
const SPAN_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// The central data structure of every simulator in this workspace: a
/// priority queue of `(SimTime, E)` pairs delivering events in
/// nondecreasing time order, FIFO among equal timestamps.
///
/// Determinism matters: the simulators seed all their RNGs and rely on
/// this queue never reordering same-time events, so a run is a pure
/// function of its configuration and seed. The wheel preserves the
/// [`HeapEventQueue`] pop order exactly (see the module docs and the
/// property tests).
pub struct EventQueue<E> {
    /// `LEVELS * SLOTS` slot vectors, flattened (`level * 64 + slot`).
    slots: Box<[Vec<Entry<E>>]>,
    /// Per-level slot occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// Far-future events (beyond the wheel span from `elapsed`).
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    /// The drained current-slot batch, sorted descending by
    /// `(time, seq)` so `pop` takes from the back.
    deliver: Vec<Entry<E>>,
    /// Scratch buffer for cascading a higher-level slot.
    cascade: Vec<Entry<E>>,
    /// Wheel position: the slot time events are currently delivered
    /// from. Never exceeds the earliest pending event time.
    elapsed: u64,
    next_seq: u64,
    /// Count of pending events across slots, overflow, and batch.
    len: usize,
    /// Highest timestamp ever popped; used to catch causality violations.
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            deliver: Vec::new(),
            cascade: Vec::new(),
            elapsed: 0,
            next_seq: 0,
            len: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Create an empty queue with pre-allocated capacity. (The wheel's
    /// slot storage grows where events actually land, so `cap` only
    /// sizes the delivery batch.)
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.deliver.reserve(cap.min(1 << 16));
        q
    }

    /// Wheel level for an event at `t` given the current position:
    /// the highest 6-bit group where they differ.
    #[inline]
    fn level_for(elapsed: u64, t: u64) -> usize {
        let diff = elapsed ^ t;
        if diff == 0 {
            return 0;
        }
        ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
    }

    /// Place an entry into the wheel or the overflow heap. `entry.time`
    /// must be ≥ `elapsed` (callers clamp).
    #[inline]
    fn place(&mut self, entry: Entry<E>) {
        let t = entry.time.0;
        debug_assert!(t >= self.elapsed);
        if (t ^ self.elapsed) >> SPAN_BITS != 0 {
            self.overflow.push(Reverse(entry));
            return;
        }
        let level = Self::level_for(self.elapsed, t);
        let slot = ((t >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        self.slots[level * SLOTS + slot].push(entry);
        self.occupied[level] |= 1 << slot;
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// In debug builds, panics if `at` is earlier than the most recently
    /// popped timestamp (scheduling into the past breaks causality).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.last_popped,
            "scheduling into the past: {at:?} < {:?}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        // Clamp for wheel placement only (the entry keeps its time): a
        // contract-violating past event lands in the current slot and
        // still pops next, ordered by (time, seq) — matching the heap.
        let t = SimTime(at.0.max(self.elapsed));
        if !self.deliver.is_empty() && at.0 <= self.elapsed {
            // A batch at `elapsed` is mid-delivery; merge by (time, seq)
            // into the descending-sorted batch so order holds.
            let entry = Entry {
                time: at,
                seq,
                event,
            };
            let pos = self
                .deliver
                .partition_point(|e| (e.time, e.seq) > (entry.time, entry.seq));
            self.deliver.insert(pos, entry);
            return;
        }
        self.place(Entry {
            time: t,
            seq,
            event,
        });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if let Some(e) = self.deliver.pop() {
            self.len -= 1;
            self.last_popped = e.time;
            return Some((e.time, e.event));
        }
        loop {
            // Pull overflow events that fit the wheel at its current
            // position (each event migrates at most once).
            while let Some(Reverse(head)) = self.overflow.peek() {
                if (head.time.0 ^ self.elapsed) >> SPAN_BITS != 0 {
                    break;
                }
                let Reverse(entry) = self.overflow.pop().expect("peeked");
                self.place(entry);
            }
            let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                // Wheel empty: jump to the overflow's earliest event.
                let Reverse(head) = self.overflow.peek()?;
                self.elapsed = head.time.0;
                continue;
            };
            let slot = self.occupied[level].trailing_zeros() as usize;
            if level == 0 {
                // One-picosecond slot: a batch of equal-time events.
                let slot_time = (self.elapsed & !SLOT_MASK) | slot as u64;
                debug_assert!(slot_time >= self.elapsed);
                self.elapsed = slot_time;
                self.occupied[0] &= !(1 << slot);
                let bucket = &mut self.slots[slot];
                std::mem::swap(bucket, &mut self.deliver);
                self.deliver
                    .sort_unstable_by_key(|e| Reverse((e.time, e.seq)));
                let e = self.deliver.pop().expect("occupied slot was empty");
                self.len -= 1;
                self.last_popped = e.time;
                return Some((e.time, e.event));
            }
            // Cascade: advance to the slot's base time and redistribute
            // its events to lower levels.
            let shift = SLOT_BITS * level as u32;
            let base = ((self.elapsed >> shift >> SLOT_BITS) << SLOT_BITS | slot as u64) << shift;
            debug_assert!(base >= self.elapsed);
            self.elapsed = base;
            self.occupied[level] &= !(1 << slot);
            let idx = level * SLOTS + slot;
            std::mem::swap(&mut self.slots[idx], &mut self.cascade);
            let mut pending = std::mem::take(&mut self.cascade);
            for entry in pending.drain(..) {
                self.place(entry);
            }
            self.cascade = pending;
        }
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.deliver.last() {
            return Some(e.time);
        }
        if let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) {
            let slot = self.occupied[level].trailing_zeros() as usize;
            if level == 0 {
                return Some(SimTime((self.elapsed & !SLOT_MASK) | slot as u64));
            }
            // Higher-level slots are unordered inside: scan for the min.
            return self.slots[level * SLOTS + slot]
                .iter()
                .map(|e| e.time)
                .min();
        }
        self.overflow.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all pending events (the wheel position and sequence counter
    /// are retained, matching the heap queue's `clear`).
    pub fn clear(&mut self) {
        for (level, bits) in self.occupied.iter_mut().enumerate() {
            let mut b = *bits;
            while b != 0 {
                let slot = b.trailing_zeros() as usize;
                b &= b - 1;
                self.slots[level * SLOTS + slot].clear();
            }
            *bits = 0;
        }
        self.overflow.clear();
        self.deliver.clear();
        self.len = 0;
    }
}

/// The original `BinaryHeap` event queue: O(log n) schedule/pop.
///
/// Retained as the executable reference model for [`EventQueue`]'s
/// property tests and as the baseline of the queue micro-benchmarks
/// (`perf_suite`, BENCH_PR4.json). Not used by any simulator.
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        HeapEventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.last_popped,
            "scheduling into the past: {at:?} < {:?}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            event,
        }));
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.last_popped = e.time;
        Some((e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(3), 'c');
        q.schedule(SimTime::from_us(1), 'a');
        q.schedule(SimTime::from_us(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_us(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_ns(5), ());
        q.schedule(SimTime::from_ns(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(2)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), ());
        q.pop();
        q.schedule(SimTime::from_us(5), ());
    }

    #[test]
    fn interleaved_schedule_pop_is_stable() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(1);
        q.schedule(t, 1);
        q.schedule(t, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(t, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn same_time_insert_mid_batch_delivers_after_pending() {
        // Schedule three at t, pop one (batch now mid-delivery), then
        // schedule a fourth at t: it must pop last (largest seq).
        let mut q = EventQueue::new();
        let t = SimTime::from_us(9);
        for i in 0..3 {
            q.schedule(t, i);
        }
        assert_eq!(q.pop().unwrap().1, 0);
        q.schedule(t, 3);
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec![1, 2, 3]);
    }

    #[test]
    fn far_future_goes_through_overflow_and_back() {
        let mut q = EventQueue::new();
        // Beyond the 2^42 ps wheel span from t=0.
        let far = SimTime::from_secs(60);
        let farther = SimTime::from_secs(61);
        q.schedule(far, "far");
        q.schedule(farther, "farther");
        q.schedule(SimTime::from_us(1), "near");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap(), (SimTime::from_us(1), "near"));
        assert_eq!(q.pop().unwrap(), (far, "far"));
        // After migrating, nearer events can still be scheduled.
        q.schedule(SimTime::from_secs(60) + SimDuration::from_us(5), "between");
        assert_eq!(q.pop().unwrap().1, "between");
        assert_eq!(q.pop().unwrap(), (farther, "farther"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cascades_across_levels() {
        // Events spread over several orders of magnitude exercise every
        // wheel level and the cascade path.
        let mut q = EventQueue::new();
        let times: Vec<u64> = (0..20).map(|i| 1u64 << i).chain([0, 63, 64, 65]).collect();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ps(t), i);
        }
        let mut sorted: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        sorted.sort();
        let popped: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_ps(), e))).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn heap_reference_agrees_on_dense_schedule() {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        // Deterministic pseudo-random times with heavy collisions.
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..5_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = SimTime::from_ps(x % 4096);
            wheel.schedule(t, i);
            heap.schedule(t, i);
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    proptest::proptest! {
        /// Popped timestamps are nondecreasing and equal-time events keep
        /// their insertion order, for arbitrary schedules.
        #[test]
        fn prop_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_ps(t), i);
            }
            let mut last = (SimTime::ZERO, 0usize);
            let mut popped = 0;
            while let Some((t, i)) = q.pop() {
                popped += 1;
                proptest::prop_assert!(t >= last.0);
                if t == last.0 && popped > 1 {
                    proptest::prop_assert!(i > last.1);
                }
                proptest::prop_assert_eq!(SimTime::from_ps(times[i]), t);
                last = (t, i);
            }
            proptest::prop_assert_eq!(popped, times.len());
            // keep SimDuration import used
            let _ = SimDuration::ZERO;
        }

        /// The wheel agrees with the binary-heap reference model on
        /// arbitrary push/pop interleavings: heavy same-timestamp
        /// collisions, offsets spanning every wheel level, and
        /// far-future times past the 2^42 ps wheel horizon (which
        /// travel through the overflow heap and migrate back).
        #[test]
        fn prop_matches_heap_reference(
            ops in proptest::collection::vec((0u8..8, 0u64..64), 1..400),
        ) {
            let mut wheel = EventQueue::new();
            let mut heap = HeapEventQueue::new();
            let mut now = SimTime::ZERO;
            let mut next_id = 0u64;
            for &(kind, raw) in &ops {
                match kind {
                    // Schedules at now + offset; the offset shape is
                    // chosen by kind so every wheel regime is hit.
                    0..=4 => {
                        let offset = match kind {
                            // Collision-heavy: offsets 0..4 ps, many
                            // events land on identical timestamps.
                            0 | 1 => raw % 4,
                            // Around slot boundaries of level 0/1.
                            2 => raw * 64,
                            // High levels of the wheel.
                            3 => raw << 36,
                            // Past the wheel horizon: overflow heap.
                            _ => (1u64 << 42) + (raw << 30),
                        };
                        let t = now + SimDuration::from_ps(offset);
                        wheel.schedule(t, next_id);
                        heap.schedule(t, next_id);
                        next_id += 1;
                    }
                    // Pops must agree exactly, including on empty.
                    _ => {
                        let (a, b) = (wheel.pop(), heap.pop());
                        proptest::prop_assert_eq!(a, b);
                        if let Some((t, _)) = a {
                            now = t;
                        }
                    }
                }
            }
            // Drain both queues in lockstep to the end.
            loop {
                let (a, b) = (wheel.pop(), heap.pop());
                proptest::prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
