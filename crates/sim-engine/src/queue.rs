//! Time-ordered event queue with deterministic FIFO tie-breaking.
//!
//! Three implementations share one contract (nondecreasing pop times,
//! FIFO among equal timestamps via a monotone sequence number, debug
//! causality check):
//!
//! * [`EventQueue`] — the hierarchical timing wheel with amortized O(1)
//!   schedule/pop, plus a binary-heap calendar overflow for timers
//!   beyond the wheel horizon. The measured winner at large pending
//!   counts (~1.2× over the heap at 64k pending, ~7× at 1M).
//! * [`HeapEventQueue`] — the original `BinaryHeap` queue, kept as the
//!   executable reference model: the property tests drive both with the
//!   same interleavings and require identical pop sequences, and the
//!   perf suite uses it as the baseline the wheel is measured against.
//!   It is also the measured winner at *small* pending counts (up to
//!   ~16k on the bench host), where the wheel's slot bookkeeping costs
//!   more than `log n`.
//! * [`AdaptiveEventQueue`] — the production queue: starts on the
//!   binary heap and migrates **once** into the timing wheel when live
//!   pending crosses [`ADAPTIVE_MIGRATION_THRESHOLD`], preserving every
//!   already-assigned `(time, seq)` pair so the pop sequence is
//!   identical to either queue run alone. Simulator event loops drain
//!   through this and get the measured-best structure at every size.
//!
//! # Wheel design
//!
//! Time is integer picoseconds ([`SimTime`]). The wheel has
//! [`LEVELS`] = 7 levels of 64 slots; level `l` slots are `64^l` ps
//! wide, so one full rotation covers `64^7 = 2^42` ps ≈ 4.4 s of
//! simulated time relative to the current wheel position — far beyond
//! any timer the simulators arm (DCQCN timers are µs-scale, SSD erases
//! ms-scale). Events whose time differs from the wheel position above
//! bit 42 go to the overflow heap and migrate into the wheel when the
//! wheel catches up (each event migrates at most once).
//!
//! `schedule` picks the level from the highest differing 6-bit group
//! between the event time and the wheel position (`elapsed`): one XOR,
//! one `leading_zeros`, one push. `pop` finds the lowest nonempty
//! level's lowest slot through per-level occupancy bitmaps
//! (`trailing_zeros`); level-0 slots are one picosecond wide, so a
//! drained slot is a batch of equal-time events sorted by sequence
//! number — FIFO for free. Higher-level slots cascade: their events
//! redistribute to lower levels as the wheel position advances, at most
//! once per level per event, which gives the amortized O(1) bound.
//!
//! Slot vectors, the delivery batch, and the cascade scratch buffer are
//! all reused across operations, so a warmed-up queue schedules and
//! pops without allocating.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending event: ordered by `(time, seq)` so that events scheduled at
/// the same timestamp are delivered in the order they were scheduled.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Bits per wheel level: 64 slots.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Mask selecting one level's slot index.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Wheel levels. Level `l` slots are `64^l` ps wide; the whole wheel
/// spans `2^(6*7) = 2^42` ps (≈ 4.4 s) relative to its position.
const LEVELS: usize = 7;
/// Bits covered by the wheel; times differing from `elapsed` at or
/// above this bit live in the overflow heap.
const SPAN_BITS: u32 = SLOT_BITS * LEVELS as u32;

// A wheel/heap entry for a word-sized payload is exactly 24 bytes
// (time + seq + payload, no padding): three entries per cache line in
// slot vectors and the delivery batch. Growth here taxes every
// simulator's hot loop, so it fails the build instead of slipping in.
const _: () = assert!(std::mem::size_of::<Entry<u64>>() == 24);
const _: () = assert!(std::mem::size_of::<Entry<()>>() == 16);

/// The central data structure of every simulator in this workspace: a
/// priority queue of `(SimTime, E)` pairs delivering events in
/// nondecreasing time order, FIFO among equal timestamps.
///
/// Determinism matters: the simulators seed all their RNGs and rely on
/// this queue never reordering same-time events, so a run is a pure
/// function of its configuration and seed. The wheel preserves the
/// [`HeapEventQueue`] pop order exactly (see the module docs and the
/// property tests).
pub struct EventQueue<E> {
    /// `LEVELS * SLOTS` slot vectors, flattened (`level * 64 + slot`).
    slots: Box<[Vec<Entry<E>>]>,
    /// Per-level slot occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// Far-future events (beyond the wheel span from `elapsed`).
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    /// The drained current-slot batch, sorted descending by
    /// `(time, seq)` so `pop` takes from the back.
    deliver: Vec<Entry<E>>,
    /// Scratch buffer for cascading a higher-level slot.
    cascade: Vec<Entry<E>>,
    /// Wheel position: the slot time events are currently delivered
    /// from. Never exceeds the earliest pending event time.
    elapsed: u64,
    next_seq: u64,
    /// Count of pending events across slots, overflow, and batch.
    len: usize,
    /// Highest timestamp ever popped; used to catch causality violations.
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            deliver: Vec::new(),
            cascade: Vec::new(),
            elapsed: 0,
            next_seq: 0,
            len: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Create an empty queue with pre-allocated capacity. (The wheel's
    /// slot storage grows where events actually land, so `cap` only
    /// sizes the delivery batch.)
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.deliver.reserve(cap.min(1 << 16));
        q
    }

    /// Wheel level for an event at `t` given the current position:
    /// the highest 6-bit group where they differ.
    #[inline]
    fn level_for(elapsed: u64, t: u64) -> usize {
        let diff = elapsed ^ t;
        if diff == 0 {
            return 0;
        }
        ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
    }

    /// Place an entry into the wheel or the overflow heap. `entry.time`
    /// must be ≥ `elapsed` (callers clamp).
    #[inline]
    fn place(&mut self, entry: Entry<E>) {
        let t = entry.time.0;
        debug_assert!(t >= self.elapsed);
        self.place_at(t, entry);
    }

    /// [`EventQueue::place`] with an explicit placement time `t` (the
    /// entry keeps its own `time`): heap→wheel migration uses it to
    /// apply the same past-time clamp [`EventQueue::schedule`] applies,
    /// while preserving `(time, seq)` pairs assigned by the heap.
    #[inline]
    fn place_at(&mut self, t: u64, entry: Entry<E>) {
        debug_assert!(t >= self.elapsed);
        if (t ^ self.elapsed) >> SPAN_BITS != 0 {
            self.overflow.push(Reverse(entry));
            return;
        }
        let level = Self::level_for(self.elapsed, t);
        let slot = ((t >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        self.slots[level * SLOTS + slot].push(entry);
        self.occupied[level] |= 1 << slot;
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// In debug builds, panics if `at` is earlier than the most recently
    /// popped timestamp (scheduling into the past breaks causality).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.last_popped,
            "scheduling into the past: {at:?} < {:?}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        // Clamp for wheel placement only (the entry keeps its time): a
        // contract-violating past event lands in the current slot and
        // still pops next, ordered by (time, seq) — matching the heap.
        let t = SimTime(at.0.max(self.elapsed));
        if !self.deliver.is_empty() && at.0 <= self.elapsed {
            // A batch at `elapsed` is mid-delivery; merge by (time, seq)
            // into the descending-sorted batch so order holds.
            let entry = Entry {
                time: at,
                seq,
                event,
            };
            let pos = self
                .deliver
                .partition_point(|e| (e.time, e.seq) > (entry.time, entry.seq));
            self.deliver.insert(pos, entry);
            return;
        }
        self.place(Entry {
            time: t,
            seq,
            event,
        });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if let Some(e) = self.deliver.pop() {
            self.len -= 1;
            self.last_popped = e.time;
            return Some((e.time, e.event));
        }
        loop {
            // Pull overflow events that fit the wheel at its current
            // position (each event migrates at most once).
            while let Some(Reverse(head)) = self.overflow.peek() {
                if (head.time.0 ^ self.elapsed) >> SPAN_BITS != 0 {
                    break;
                }
                let Reverse(entry) = self.overflow.pop().expect("peeked");
                self.place(entry);
            }
            let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                // Wheel empty: jump to the overflow's earliest event.
                let Reverse(head) = self.overflow.peek()?;
                self.elapsed = head.time.0;
                continue;
            };
            let slot = self.occupied[level].trailing_zeros() as usize;
            if level == 0 {
                // One-picosecond slot: a batch of equal-time events.
                let slot_time = (self.elapsed & !SLOT_MASK) | slot as u64;
                debug_assert!(slot_time >= self.elapsed);
                self.elapsed = slot_time;
                self.occupied[0] &= !(1 << slot);
                let bucket = &mut self.slots[slot];
                std::mem::swap(bucket, &mut self.deliver);
                self.deliver
                    .sort_unstable_by_key(|e| Reverse((e.time, e.seq)));
                let e = self.deliver.pop().expect("occupied slot was empty");
                self.len -= 1;
                self.last_popped = e.time;
                return Some((e.time, e.event));
            }
            // Cascade: advance to the slot's base time and redistribute
            // its events to lower levels.
            let shift = SLOT_BITS * level as u32;
            let base = ((self.elapsed >> shift >> SLOT_BITS) << SLOT_BITS | slot as u64) << shift;
            debug_assert!(base >= self.elapsed);
            self.elapsed = base;
            self.occupied[level] &= !(1 << slot);
            let idx = level * SLOTS + slot;
            std::mem::swap(&mut self.slots[idx], &mut self.cascade);
            let mut pending = std::mem::take(&mut self.cascade);
            for entry in pending.drain(..) {
                self.place(entry);
            }
            self.cascade = pending;
        }
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.deliver.last() {
            return Some(e.time);
        }
        if let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) {
            let slot = self.occupied[level].trailing_zeros() as usize;
            if level == 0 {
                return Some(SimTime((self.elapsed & !SLOT_MASK) | slot as u64));
            }
            // Higher-level slots are unordered inside: scan for the min.
            return self.slots[level * SLOTS + slot]
                .iter()
                .map(|e| e.time)
                .min();
        }
        self.overflow.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all pending events (the wheel position and sequence counter
    /// are retained, matching the heap queue's `clear`).
    pub fn clear(&mut self) {
        for (level, bits) in self.occupied.iter_mut().enumerate() {
            let mut b = *bits;
            while b != 0 {
                let slot = b.trailing_zeros() as usize;
                b &= b - 1;
                self.slots[level * SLOTS + slot].clear();
            }
            *bits = 0;
        }
        self.overflow.clear();
        self.deliver.clear();
        self.len = 0;
    }

    /// Restore the pristine `EventQueue::new()` state — no pending
    /// events, wheel position and sequence counter back at zero — while
    /// keeping every slot/batch/overflow allocation. A reset queue is
    /// observably indistinguishable from a freshly built one; workspace
    /// reuse across simulation cells depends on exactly that.
    pub fn reset(&mut self) {
        self.clear();
        self.elapsed = 0;
        self.next_seq = 0;
        self.last_popped = SimTime::ZERO;
    }
}

/// The original `BinaryHeap` event queue: O(log n) schedule/pop.
///
/// Retained as the executable reference model for [`EventQueue`]'s
/// property tests and as the baseline of the queue micro-benchmarks
/// (`perf_suite`, BENCH_PR4.json). Not used by any simulator.
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        HeapEventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.last_popped,
            "scheduling into the past: {at:?} < {:?}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            event,
        }));
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.last_popped = e.time;
        Some((e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Restore the pristine `HeapEventQueue::new()` state while keeping
    /// the heap allocation (see [`EventQueue::reset`]).
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.last_popped = SimTime::ZERO;
    }
}

/// Live-pending count at which [`AdaptiveEventQueue`] migrates from the
/// binary heap to the timing wheel. Chosen from the measured heap/wheel
/// crossover of the hold-model benchmark (`perf_baseline`, see
/// BENCH_PR10.json): on the reference container the heap wins up to
/// ~16k pending (cache-resident sift beats cascade bookkeeping) and
/// the wheel wins from ~32k up, so the switch sits at the top of the
/// heap's regime — a queue that grows past it is headed for the sizes
/// where the wheel's win is large (1.2× at 64k, ~7× at 1M), while the
/// crossover zone itself is within a few percent either way.
/// Compile-time fixed — the migration point must be a pure function of
/// the event sequence, never of wall-clock measurements.
pub const ADAPTIVE_MIGRATION_THRESHOLD: usize = 16_384;

/// Size-adaptive event queue: a [`HeapEventQueue`]-style binary heap
/// while pending events are few, migrating **once** into the
/// [`EventQueue`] timing wheel when live pending reaches
/// [`ADAPTIVE_MIGRATION_THRESHOLD`].
///
/// Both underlying queues pop in strict `(time, seq)` order and the
/// migration moves every entry with its already-assigned pair, so the
/// pop sequence is identical to either structure run alone — the
/// property tests drive all three through the same interleavings. The
/// wheel allocation is retained across [`AdaptiveEventQueue::reset`],
/// so a workspace-reused queue pays the wheel's slot-table allocation
/// at most once per worker thread.
pub struct AdaptiveEventQueue<E> {
    /// Small-regime store (pre-migration).
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Large-regime store, stored inline so post-migration operations
    /// pay no pointer hop — its slot table is one ~10 KB allocation at
    /// construction, retained across `reset` for workspace reuse.
    wheel: EventQueue<E>,
    /// True once migrated: every operation delegates to the wheel.
    on_wheel: bool,
    threshold: usize,
    next_seq: u64,
    last_popped: SimTime,
    /// Cumulative heap→wheel migrations (diagnostic; survives `reset`
    /// so sweep harnesses can difference it across cells).
    migrations: u64,
}

impl<E> Default for AdaptiveEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> AdaptiveEventQueue<E> {
    /// Create an empty queue with the production migration threshold.
    pub fn new() -> Self {
        Self::with_threshold(ADAPTIVE_MIGRATION_THRESHOLD)
    }

    /// Create an empty queue migrating at `threshold` pending events
    /// (minimum 1). The property tests use small thresholds to drive
    /// interleavings across the migration point; production code uses
    /// [`AdaptiveEventQueue::new`].
    pub fn with_threshold(threshold: usize) -> Self {
        AdaptiveEventQueue {
            heap: BinaryHeap::new(),
            wheel: EventQueue::new(),
            on_wheel: false,
            threshold: threshold.max(1),
            next_seq: 0,
            last_popped: SimTime::ZERO,
            migrations: 0,
        }
    }

    /// Move every heap entry into the wheel, preserving `(time, seq)`.
    /// The wheel starts positioned at the last popped timestamp — every
    /// pending entry is at or after it (causality contract), and any
    /// release-mode violator is clamped exactly as `schedule` clamps.
    #[cold]
    fn migrate(&mut self) {
        let wheel = &mut self.wheel;
        wheel.reset();
        wheel.elapsed = self.last_popped.0;
        wheel.last_popped = self.last_popped;
        wheel.next_seq = self.next_seq;
        wheel.len = self.heap.len();
        for Reverse(entry) in self.heap.drain() {
            let t = entry.time.0.max(wheel.elapsed);
            wheel.place_at(t, entry);
        }
        self.on_wheel = true;
        self.migrations += 1;
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// In debug builds, panics if `at` is earlier than the most recently
    /// popped timestamp (scheduling into the past breaks causality).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        if self.on_wheel {
            return self.wheel.schedule(at, event);
        }
        debug_assert!(
            at >= self.last_popped,
            "scheduling into the past: {at:?} < {:?}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            event,
        }));
        if self.heap.len() >= self.threshold {
            self.migrate();
        }
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.on_wheel {
            return self.wheel.pop();
        }
        let Reverse(e) = self.heap.pop()?;
        self.last_popped = e.time;
        Some((e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.on_wheel {
            return self.wheel.peek_time();
        }
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        if self.on_wheel {
            return self.wheel.len();
        }
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all pending events (position and sequence counter retained,
    /// matching the other queues' `clear`; the current heap/wheel mode
    /// is also retained).
    pub fn clear(&mut self) {
        if self.on_wheel {
            return self.wheel.clear();
        }
        self.heap.clear();
    }

    /// Restore the pristine `AdaptiveEventQueue::new()` observable
    /// state — empty, heap mode, position and sequence counter at zero
    /// — while keeping the heap and wheel allocations (and the
    /// cumulative [`AdaptiveEventQueue::migrations`] diagnostic). See
    /// [`EventQueue::reset`].
    pub fn reset(&mut self) {
        self.heap.clear();
        self.wheel.reset();
        self.on_wheel = false;
        self.next_seq = 0;
        self.last_popped = SimTime::ZERO;
    }

    /// Cumulative heap→wheel migrations since construction (not zeroed
    /// by [`AdaptiveEventQueue::reset`]; sweep harnesses difference it
    /// across cells).
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// True once this queue has migrated onto the timing wheel (resets
    /// back to the heap on [`AdaptiveEventQueue::reset`]).
    pub fn on_wheel(&self) -> bool {
        self.on_wheel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(3), 'c');
        q.schedule(SimTime::from_us(1), 'a');
        q.schedule(SimTime::from_us(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_us(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_ns(5), ());
        q.schedule(SimTime::from_ns(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(2)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), ());
        q.pop();
        q.schedule(SimTime::from_us(5), ());
    }

    #[test]
    fn interleaved_schedule_pop_is_stable() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(1);
        q.schedule(t, 1);
        q.schedule(t, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(t, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn same_time_insert_mid_batch_delivers_after_pending() {
        // Schedule three at t, pop one (batch now mid-delivery), then
        // schedule a fourth at t: it must pop last (largest seq).
        let mut q = EventQueue::new();
        let t = SimTime::from_us(9);
        for i in 0..3 {
            q.schedule(t, i);
        }
        assert_eq!(q.pop().unwrap().1, 0);
        q.schedule(t, 3);
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec![1, 2, 3]);
    }

    #[test]
    fn far_future_goes_through_overflow_and_back() {
        let mut q = EventQueue::new();
        // Beyond the 2^42 ps wheel span from t=0.
        let far = SimTime::from_secs(60);
        let farther = SimTime::from_secs(61);
        q.schedule(far, "far");
        q.schedule(farther, "farther");
        q.schedule(SimTime::from_us(1), "near");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap(), (SimTime::from_us(1), "near"));
        assert_eq!(q.pop().unwrap(), (far, "far"));
        // After migrating, nearer events can still be scheduled.
        q.schedule(SimTime::from_secs(60) + SimDuration::from_us(5), "between");
        assert_eq!(q.pop().unwrap().1, "between");
        assert_eq!(q.pop().unwrap(), (farther, "farther"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cascades_across_levels() {
        // Events spread over several orders of magnitude exercise every
        // wheel level and the cascade path.
        let mut q = EventQueue::new();
        let times: Vec<u64> = (0..20).map(|i| 1u64 << i).chain([0, 63, 64, 65]).collect();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ps(t), i);
        }
        let mut sorted: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        sorted.sort();
        let popped: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_ps(), e))).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn heap_reference_agrees_on_dense_schedule() {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        // Deterministic pseudo-random times with heavy collisions.
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..5_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = SimTime::from_ps(x % 4096);
            wheel.schedule(t, i);
            heap.schedule(t, i);
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn adaptive_migrates_once_and_keeps_fifo() {
        let mut q = AdaptiveEventQueue::with_threshold(8);
        let t = SimTime::from_us(3);
        // Cross the threshold with heavy same-timestamp collisions: the
        // migration must carry the heap-assigned sequence numbers.
        for i in 0..20 {
            q.schedule(t, i);
        }
        assert!(q.on_wheel(), "threshold crossed: must be on the wheel");
        assert_eq!(q.migrations(), 1);
        assert_eq!(q.len(), 20);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..20).collect::<Vec<_>>());
        // Draining does not demote: the queue migrates once.
        q.schedule(t, 99);
        assert!(q.on_wheel());
        assert_eq!(q.migrations(), 1);
    }

    #[test]
    fn adaptive_below_threshold_stays_on_heap() {
        let mut q = AdaptiveEventQueue::with_threshold(64);
        for i in 0..63 {
            q.schedule(SimTime::from_us(i), i);
        }
        assert!(!q.on_wheel());
        assert_eq!(q.migrations(), 0);
        assert_eq!(q.peek_time(), Some(SimTime::from_us(0)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..63).collect::<Vec<_>>());
    }

    #[test]
    fn adaptive_migration_through_overflow_times() {
        // Entries past the 2^42 ps wheel horizon at migration time must
        // come back in order through the wheel's overflow heap.
        let mut q = AdaptiveEventQueue::with_threshold(4);
        q.schedule(SimTime::from_secs(60), "far");
        q.schedule(SimTime::from_us(1), "near");
        q.schedule(SimTime::from_secs(61), "farther");
        q.schedule(SimTime::from_us(2), "soon");
        assert!(q.on_wheel());
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["near", "soon", "far", "farther"]);
    }

    #[test]
    fn reset_restores_pristine_state() {
        // Drive all three queues through a run, reset, and require the
        // second run's pops to be identical to a fresh queue's — the
        // workspace-reuse contract.
        let script = |q: &mut AdaptiveEventQueue<u64>| {
            let mut popped = Vec::new();
            for i in 0..12u64 {
                q.schedule(SimTime::from_us(7 + (i % 3)), i);
            }
            while let Some((t, e)) = q.pop() {
                popped.push((t, e));
            }
            popped
        };
        let mut reused = AdaptiveEventQueue::with_threshold(8);
        let first = script(&mut reused);
        assert_eq!(reused.migrations(), 1);
        reused.reset();
        assert!(!reused.on_wheel(), "reset returns to the heap regime");
        assert!(reused.is_empty());
        let second = script(&mut reused);
        assert_eq!(first, second);
        assert_eq!(reused.migrations(), 2, "cumulative across resets");

        let mut wheel = EventQueue::new();
        wheel.schedule(SimTime::from_us(5), 1u64);
        let _ = wheel.pop();
        wheel.schedule(SimTime::from_us(9), 2u64);
        wheel.reset();
        // After reset, seq and position are fresh: scheduling at an
        // earlier time than before the reset must be legal and ordered.
        wheel.schedule(SimTime::from_us(1), 3u64);
        wheel.schedule(SimTime::from_us(1), 4u64);
        assert_eq!(wheel.pop(), Some((SimTime::from_us(1), 3u64)));
        assert_eq!(wheel.pop(), Some((SimTime::from_us(1), 4u64)));
        assert!(wheel.pop().is_none());

        let mut heap = HeapEventQueue::new();
        heap.schedule(SimTime::from_us(5), 1u64);
        let _ = heap.pop();
        heap.reset();
        heap.schedule(SimTime::from_us(1), 2u64);
        assert_eq!(heap.pop(), Some((SimTime::from_us(1), 2u64)));
    }

    proptest::proptest! {
        /// Popped timestamps are nondecreasing and equal-time events keep
        /// their insertion order, for arbitrary schedules.
        #[test]
        fn prop_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_ps(t), i);
            }
            let mut last = (SimTime::ZERO, 0usize);
            let mut popped = 0;
            while let Some((t, i)) = q.pop() {
                popped += 1;
                proptest::prop_assert!(t >= last.0);
                if t == last.0 && popped > 1 {
                    proptest::prop_assert!(i > last.1);
                }
                proptest::prop_assert_eq!(SimTime::from_ps(times[i]), t);
                last = (t, i);
            }
            proptest::prop_assert_eq!(popped, times.len());
            // keep SimDuration import used
            let _ = SimDuration::ZERO;
        }

        /// The wheel agrees with the binary-heap reference model on
        /// arbitrary push/pop interleavings: heavy same-timestamp
        /// collisions, offsets spanning every wheel level, and
        /// far-future times past the 2^42 ps wheel horizon (which
        /// travel through the overflow heap and migrate back).
        #[test]
        fn prop_matches_heap_reference(
            ops in proptest::collection::vec((0u8..8, 0u64..64), 1..400),
        ) {
            let mut wheel = EventQueue::new();
            let mut heap = HeapEventQueue::new();
            let mut now = SimTime::ZERO;
            let mut next_id = 0u64;
            for &(kind, raw) in &ops {
                match kind {
                    // Schedules at now + offset; the offset shape is
                    // chosen by kind so every wheel regime is hit.
                    0..=4 => {
                        let offset = match kind {
                            // Collision-heavy: offsets 0..4 ps, many
                            // events land on identical timestamps.
                            0 | 1 => raw % 4,
                            // Around slot boundaries of level 0/1.
                            2 => raw * 64,
                            // High levels of the wheel.
                            3 => raw << 36,
                            // Past the wheel horizon: overflow heap.
                            _ => (1u64 << 42) + (raw << 30),
                        };
                        let t = now + SimDuration::from_ps(offset);
                        wheel.schedule(t, next_id);
                        heap.schedule(t, next_id);
                        next_id += 1;
                    }
                    // Pops must agree exactly, including on empty.
                    _ => {
                        let (a, b) = (wheel.pop(), heap.pop());
                        proptest::prop_assert_eq!(a, b);
                        if let Some((t, _)) = a {
                            now = t;
                        }
                    }
                }
            }
            // Drain both queues in lockstep to the end.
            loop {
                let (a, b) = (wheel.pop(), heap.pop());
                proptest::prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }

        /// The adaptive queue agrees with BOTH references — the binary
        /// heap and the timing wheel — on arbitrary push/pop
        /// interleavings whose pending count wanders across the
        /// migration threshold (small thresholds force the migration to
        /// happen mid-interleaving, in every offset regime).
        #[test]
        fn prop_adaptive_matches_both_references(
            ops in proptest::collection::vec((0u8..8, 0u64..64), 1..400),
            threshold in 1usize..48,
        ) {
            let mut adaptive = AdaptiveEventQueue::with_threshold(threshold);
            let mut wheel = EventQueue::new();
            let mut heap = HeapEventQueue::new();
            let mut now = SimTime::ZERO;
            let mut next_id = 0u64;
            for &(kind, raw) in &ops {
                match kind {
                    0..=4 => {
                        let offset = match kind {
                            0 | 1 => raw % 4,
                            2 => raw * 64,
                            3 => raw << 36,
                            _ => (1u64 << 42) + (raw << 30),
                        };
                        let t = now + SimDuration::from_ps(offset);
                        adaptive.schedule(t, next_id);
                        wheel.schedule(t, next_id);
                        heap.schedule(t, next_id);
                        next_id += 1;
                    }
                    _ => {
                        let a = adaptive.pop();
                        proptest::prop_assert_eq!(a, wheel.pop());
                        proptest::prop_assert_eq!(a, heap.pop());
                        proptest::prop_assert_eq!(adaptive.len(), heap.len());
                        proptest::prop_assert_eq!(adaptive.peek_time(), heap.peek_time());
                        if let Some((t, _)) = a {
                            now = t;
                        }
                    }
                }
            }
            loop {
                let a = adaptive.pop();
                proptest::prop_assert_eq!(a, wheel.pop());
                proptest::prop_assert_eq!(a, heap.pop());
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
