//! Offline stub of the `rand` crate implementing the subset of the API
//! this workspace uses: `Rng` (`gen`, `gen_range`, `gen_bool`),
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream `StdRng` (ChaCha12), but fully
//! deterministic for a given seed, which is the property the
//! simulations rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values producible directly from a generator (`Rng::gen`).
pub trait FromRng {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl FromRng for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as u128 + v) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! sint_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
sint_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f32::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing generator interface.
pub trait Rng: RngCore {
    /// Draw a value of an inferable type.
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for upstream
    /// `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in s.iter_mut() {
                *w = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: this stub's small generator is the same as its standard one.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Slice sampling helpers.

    use super::Rng;

    /// Subset of upstream `SliceRandom`: in-place Fisher–Yates shuffle
    /// and uniform element choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly pick an element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod distributions {
    //! Distribution trait (shared with the `rand_distr` stub).

    use super::Rng;

    /// A distribution over `T` samplable with any generator.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

pub mod prelude {
    //! Common imports.
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
        }
    }
}
