//! Offline vendored `rayon`: the parallel-iterator API subset the
//! workspace uses, backed by a **real** scoped-thread pool.
//!
//! Until PR 2 this crate was a sequential stub; it now executes
//! `par_iter`/`into_par_iter` pipelines and [`join`] on worker threads
//! while keeping the workspace's determinism contract: results are
//! assembled in input-index order, so a `collect` is byte-identical to
//! the sequential run at any thread count. See [`pool`] for the
//! executor (thread-count resolution via `SRCSIM_THREADS` /
//! `RAYON_NUM_THREADS`, serial fallback at 1 thread, nested-call
//! serialization, panic semantics) and [`iter`] for the pipeline
//! types.
//!
//! Higher layers should prefer `sim_engine::runner::ScenarioRunner`,
//! which wraps [`pool`] with explicit thread configuration and
//! per-cell seed derivation; this crate exists so `rayon`-idiomatic
//! code keeps compiling against the vendored workspace.

pub mod iter;
pub mod pool;

pub use iter::{
    IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
    IntoParallelRefMutIterator, ParallelIterator,
};
pub use pool::{current_num_threads, join};

pub mod prelude {
    //! Common imports, mirroring `rayon::prelude`.
    pub use super::iter::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::pool::with_threads;
    use super::prelude::*;

    #[test]
    fn range_into_par_iter() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn slice_par_iter_enumerate_flat_map() {
        let xs = vec![10, 20];
        let v: Vec<usize> = xs
            .par_iter()
            .enumerate()
            .flat_map(|(i, &x)| vec![i, x])
            .collect();
        assert_eq!(v, vec![0, 10, 1, 20]);
    }

    #[test]
    fn par_iter_mut_in_place() {
        let mut xs = vec![1, 2, 3];
        xs.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(xs, vec![2, 3, 4]);
    }

    #[test]
    fn parallel_collect_matches_serial() {
        let serial: Vec<u64> = with_threads(1, || {
            (0..64u64)
                .into_par_iter()
                .map(|x| x.wrapping_mul(x))
                .collect()
        });
        let parallel: Vec<u64> = with_threads(4, || {
            (0..64u64)
                .into_par_iter()
                .map(|x| x.wrapping_mul(x))
                .collect()
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_flat_map_preserves_order() {
        let out: Vec<usize> = with_threads(4, || {
            (0..10usize)
                .into_par_iter()
                .flat_map(|i| vec![i * 2, i * 2 + 1])
                .collect()
        });
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 6 * 7, || "answer");
        assert_eq!((a, b), (42, "answer"));
    }
}
