//! Offline stub of `rayon`: the `par_iter`/`into_par_iter` entry points
//! executed **sequentially** on the calling thread.
//!
//! The returned iterators are ordinary [`std::iter::Iterator`]s, so the
//! usual combinators (`map`, `enumerate`, `flat_map`, `collect`, …)
//! keep working unchanged. Results are identical to a real rayon run
//! because the workspace only uses order-preserving collectors.

/// Consuming conversion: `into_par_iter()`.
pub trait IntoParallelIterator {
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Convert into a "parallel" (here: sequential) iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Borrowing conversion: `par_iter()`.
pub trait IntoParallelRefIterator<'data> {
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item: 'data;
    /// Iterate by reference.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Iter = <&'data I as IntoParallelIterator>::Iter;
    type Item = <&'data I as IntoParallelIterator>::Item;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Mutably borrowing conversion: `par_iter_mut()`.
pub trait IntoParallelRefMutIterator<'data> {
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item: 'data;
    /// Iterate by mutable reference.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoParallelIterator,
{
    type Iter = <&'data mut I as IntoParallelIterator>::Iter;
    type Item = <&'data mut I as IntoParallelIterator>::Item;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Run two closures (sequentially here) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod prelude {
    //! Common imports, mirroring `rayon::prelude`.
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn slice_par_iter_enumerate_flat_map() {
        let xs = vec![10, 20];
        let v: Vec<usize> = xs
            .par_iter()
            .enumerate()
            .flat_map(|(i, &x)| vec![i, x])
            .collect();
        assert_eq!(v, vec![0, 10, 1, 20]);
    }

    #[test]
    fn par_iter_mut_in_place() {
        let mut xs = vec![1, 2, 3];
        xs.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(xs, vec![2, 3, 4]);
    }
}
