//! The executor behind every parallel entry point in this crate: a
//! scoped-thread pool with dynamic index scheduling and index-ordered
//! result assembly.
//!
//! # Determinism contract
//!
//! [`run_indexed`] evaluates `f(0), f(1), …, f(n-1)` on up to
//! [`current_num_threads`] worker threads. Workers pull the *next
//! unclaimed index* from a shared atomic cursor (cheap dynamic load
//! balancing — uneven cells don't serialize behind a static chunking),
//! but every result is written back into its own index slot, so the
//! returned `Vec` is identical to the serial
//! `(0..n).map(f).collect()` no matter how the cells interleave.
//! Callers that derive per-cell state (RNG seeds above all) from the
//! cell *index* therefore produce byte-identical output at any thread
//! count.
//!
//! # Thread-count resolution
//!
//! `SRCSIM_THREADS` wins over `RAYON_NUM_THREADS`; absent both, the
//! machine's available parallelism is used. `threads = 1` is the safe
//! serial fallback: no threads are spawned and `f` runs inline on the
//! caller. [`with_threads`] installs a scoped per-thread override —
//! the test harness uses it to compare serial and parallel runs inside
//! one process without touching the environment.
//!
//! # Nesting
//!
//! Pool workers mark themselves; any parallel call made *from inside a
//! worker* (a sweep cell that itself sweeps) runs serially, so the
//! process never exceeds the configured thread budget and nested
//! grids stay deterministic for free.
//!
//! # Panics
//!
//! A panic in one cell stops that worker; the remaining workers finish
//! draining the cursor, every thread is joined, and the first panic
//! payload is re-raised on the caller. Because the pool is scoped per
//! call there is nothing to poison: the next `run_indexed` starts
//! fresh.

use std::any::Any;
use std::cell::Cell;
use std::num::NonZeroUsize;
use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

thread_local! {
    /// Per-thread thread-count override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// True inside pool workers: nested parallel calls run serially.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Resolve one thread-count variable from its raw value: `Ok(None)`
/// when unset, `Ok(Some(n))` for a positive integer, and `Err(warning)`
/// — the message to print — when the variable is set but unusable
/// (empty, non-numeric, or zero).
fn resolve_thread_var(key: &str, raw: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = raw else { return Ok(None) };
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(Some(n)),
        _ => Err(format!(
            "srcsim: ignoring {key}={raw:?}: expected a positive integer thread count"
        )),
    }
}

/// Environment-resolved thread count, cached once per process:
/// `SRCSIM_THREADS`, then `RAYON_NUM_THREADS`, then available
/// parallelism (1 if unknown). A set-but-unusable value is skipped with
/// a one-time stderr warning naming it — a typo'd `SRCSIM_THREADS`
/// must not silently change how many threads a determinism check ran
/// on.
fn env_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        for key in ["SRCSIM_THREADS", "RAYON_NUM_THREADS"] {
            let raw = std::env::var(key).ok();
            match resolve_thread_var(key, raw.as_deref()) {
                Ok(Some(n)) => return n,
                Ok(None) => {}
                Err(warning) => eprintln!("{warning}"),
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Number of threads the next parallel call on this thread will use:
/// 1 inside a pool worker (nested calls are serial), otherwise the
/// [`with_threads`] override, otherwise the environment default.
pub fn current_num_threads() -> usize {
    if IN_WORKER.with(|c| c.get()) {
        return 1;
    }
    OVERRIDE.with(|c| c.get()).unwrap_or_else(env_threads)
}

/// Run `f` with parallel calls on this thread capped at `n` threads
/// (minimum 1). The previous cap is restored on exit, panic or not.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// Evaluate `f(i)` for every `i in 0..n` on the pool and return the
/// results **in index order** (see the module docs for the full
/// contract). Serial when the thread budget or `n` is ≤ 1.
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(n, || (), |(), i| f(i))
}

/// [`run_indexed`] with per-worker state: each worker thread builds one
/// `S` via `make_state` when it starts and hands `f` a mutable borrow
/// of it for every index that worker claims. The serial path builds one
/// state and runs every index through it.
///
/// The determinism contract is unchanged **provided `f` does not let
/// results depend on the state's history** — the intended use is
/// reusable scratch storage (buffers, pools, caches) that `f` fully
/// resets before reading, so which worker ran which cells is
/// unobservable. Results are still assembled in index order.
pub fn run_indexed_with<S, T, F>(n: usize, make_state: impl Fn() -> S + Sync, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        let mut state = make_state();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    // Chunked claims: each cursor bump grabs a run of indices instead of
    // one, cutting contention on the shared counter for large grids.
    // `threads * 4` chunks per thread on average keeps dynamic load
    // balancing (an unlucky thread gives up at most one chunk of slack).
    // Results are still written by index, so chunking cannot change the
    // output.
    let chunk = (n / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let worker = || {
        IN_WORKER.with(|c| c.set(true));
        let mut state = make_state();
        let mut got: Vec<(usize, T)> = Vec::new();
        loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            for i in start..(start + chunk).min(n) {
                got.push((i, f(&mut state, i)));
            }
        }
        got
    };
    let parts: Vec<Result<Vec<(usize, T)>, Box<dyn Any + Send>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads).map(|_| s.spawn(&worker)).collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut first_panic: Option<Box<dyn Any + Send>> = None;
    for part in parts {
        match part {
            Ok(list) => {
                for (i, v) in list {
                    debug_assert!(out[i].is_none(), "index {i} computed twice");
                    out[i] = Some(v);
                }
            }
            Err(payload) => {
                first_panic.get_or_insert(payload);
            }
        }
    }
    if let Some(payload) = first_panic {
        panic::resume_unwind(payload);
    }
    out.into_iter()
        .map(|slot| slot.expect("every index computed exactly once"))
        .collect()
}

/// Run two independent closures and return both results — `b` on a
/// spawned scoped thread when the budget allows, both inline at
/// `threads = 1`. Panics from either side are re-raised after both
/// have stopped.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| {
            IN_WORKER.with(|c| c.set(true));
            b()
        });
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => panic::resume_unwind(payload),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn serial_when_one_thread() {
        let spawned = AtomicBool::new(false);
        let main_id = std::thread::current().id();
        let out = with_threads(1, || {
            run_indexed(8, |i| {
                if std::thread::current().id() != main_id {
                    spawned.store(true, Ordering::Relaxed);
                }
                i * i
            })
        });
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
        assert!(
            !spawned.load(Ordering::Relaxed),
            "serial fallback must not spawn"
        );
    }

    #[test]
    fn parallel_preserves_index_order() {
        // Later indices finish first (they sleep less); the output must
        // still be in index order.
        let out = with_threads(4, || {
            run_indexed(16, |i| {
                std::thread::sleep(std::time::Duration::from_micros(((16 - i) * 50) as u64));
                i * 3
            })
        });
        assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn nested_calls_run_serially() {
        let out = with_threads(4, || {
            run_indexed(4, |i| {
                assert_eq!(current_num_threads(), 1, "worker must see a serial budget");
                let inner = run_indexed(3, |j| i * 10 + j);
                inner.iter().sum::<usize>()
            })
        });
        assert_eq!(out, vec![3, 33, 63, 93]);
    }

    #[test]
    fn panic_propagates_and_pool_is_reusable() {
        let boom = std::panic::catch_unwind(|| {
            with_threads(4, || {
                run_indexed(8, |i| {
                    if i == 3 {
                        panic!("cell 3 exploded");
                    }
                    i
                })
            })
        });
        assert!(boom.is_err(), "panic in one cell must reach the caller");
        // Nothing is poisoned: the next call works and is ordered.
        let out = with_threads(4, || run_indexed(8, |i| i + 1));
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = current_num_threads();
        let _ =
            std::panic::catch_unwind(|| with_threads(7, || -> () { panic!("inside override") }));
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn join_returns_both_and_orders_results() {
        let (a, b) = with_threads(2, || join(|| 1 + 1, || "two"));
        assert_eq!((a, b), (2, "two"));
        let (a, b) = with_threads(1, || join(|| 3, || 4));
        assert_eq!((a, b), (3, 4));
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = with_threads(4, || run_indexed(0, |_| 0u8));
        assert!(out.is_empty());
    }

    #[test]
    fn bad_thread_env_warns_with_key_and_value() {
        // Usable values and unset keys resolve silently.
        assert_eq!(resolve_thread_var("SRCSIM_THREADS", None), Ok(None));
        assert_eq!(
            resolve_thread_var("SRCSIM_THREADS", Some(" 4 ")),
            Ok(Some(4))
        );
        // Unusable values produce a warning naming the key and the
        // offending value, never a silent fallback.
        for bad in ["", "four", "0", "-2", "1.5"] {
            let warning = resolve_thread_var("SRCSIM_THREADS", Some(bad))
                .expect_err("unusable value must warn");
            assert!(
                warning.contains("SRCSIM_THREADS") && warning.contains(bad),
                "warning must name key and value: {warning}"
            );
        }
    }

    #[test]
    fn per_worker_state_is_private_and_results_ordered() {
        use std::sync::atomic::AtomicUsize;
        // Each worker gets its own freshly made state; results are
        // index-ordered regardless of which worker computed them.
        let built = AtomicUsize::new(0);
        let out = with_threads(4, || {
            run_indexed_with(
                64,
                || {
                    built.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::new()
                },
                |scratch, i| {
                    scratch.push(i);
                    // A result computed from reset-before-use scratch is
                    // independent of the worker's history.
                    scratch.last().copied().unwrap() * 2
                },
            )
        });
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        let n = built.load(Ordering::Relaxed);
        assert!(n >= 1 && n <= 4, "one state per participating worker: {n}");
        // Serial path: exactly one state, same results.
        let built1 = AtomicUsize::new(0);
        let serial = with_threads(1, || {
            run_indexed_with(
                64,
                || {
                    built1.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::new()
                },
                |scratch, i| {
                    scratch.push(i);
                    scratch.last().copied().unwrap() * 2
                },
            )
        });
        assert_eq!(serial, out);
        assert_eq!(built1.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn chunked_matches_serial_across_sizes() {
        // Sizes around the chunking boundaries: n < threads (chunk
        // clamps to 1), n not divisible by threads * 4, and n large
        // enough for multi-element chunks. The parallel result must be
        // exactly the serial map at every size and thread count.
        let cell = |i: usize| (i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ i as u64;
        for n in [1, 2, 3, 7, 16, 33, 100, 257, 1024] {
            let serial: Vec<u64> = (0..n).map(cell).collect();
            for threads in [2, 3, 4, 8] {
                let par = with_threads(threads, || run_indexed(n, cell));
                assert_eq!(par, serial, "n={n} threads={threads}");
            }
        }
    }
}
