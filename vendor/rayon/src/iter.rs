//! The `par_iter`/`into_par_iter` facade: lazy per-index pipelines
//! executed on the [`crate::pool`] at a terminal (`collect`,
//! `for_each`).
//!
//! A pipeline is a chain of combinators over an index-addressable
//! source: the source materializes its items into one slot per index,
//! combinators compose per-item functions, and the terminal evaluates
//! slot `0..n` on the pool, reassembling items **in slot order**. Any
//! `collect` is therefore byte-identical to the equivalent sequential
//! iterator chain — the property the workspace's determinism contract
//! rests on (see DESIGN.md "Parallel execution").
//!
//! Only the API subset the workspace uses is provided: `map`,
//! `enumerate`, `flat_map`, `for_each`, `collect`. Combinator closures
//! need the usual rayon bounds (`Fn + Sync`) because they are shared
//! across worker threads.

use crate::pool;
use std::sync::Mutex;

/// A parallel pipeline: `pi_len()` index slots, each producing zero or
/// more items when driven. Implementations must be `Sync` — terminals
/// share the pipeline across worker threads by reference.
pub trait ParallelIterator: Sized + Sync {
    /// Item the pipeline yields.
    type Item: Send;

    /// Number of index slots.
    #[doc(hidden)]
    fn pi_len(&self) -> usize;

    /// Produce slot `i`'s items. Called exactly once per slot.
    #[doc(hidden)]
    fn pi_run(&self, i: usize) -> Vec<Self::Item>;

    /// Transform every item with `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Pair every item with its index. Available only on indexed
    /// pipelines (one item per slot), where slot index == item index —
    /// the same restriction real rayon enforces via
    /// `IndexedParallelIterator`.
    fn enumerate(self) -> Enumerate<Self>
    where
        Self: IndexedParallelIterator,
    {
        Enumerate { base: self }
    }

    /// Map every item to an iterator and flatten, preserving slot
    /// order.
    fn flat_map<I, F>(self, f: F) -> FlatMap<Self, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(Self::Item) -> I + Sync,
    {
        FlatMap { base: self, f }
    }

    /// Apply `f` to every item on the pool. Slot evaluation order is
    /// unspecified; per-slot items are delivered in order.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let n = self.pi_len();
        pool::run_indexed(n, |i| {
            for item in self.pi_run(i) {
                f(item);
            }
        });
    }

    /// Evaluate the pipeline on the pool and collect every item in
    /// slot order — identical to the sequential result.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        let n = self.pi_len();
        pool::run_indexed(n, |i| self.pi_run(i))
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Marker for pipelines where every slot yields exactly one item
/// (sources, `map`, `enumerate` — not `flat_map`).
pub trait IndexedParallelIterator: ParallelIterator {}

/// Index-addressable source: one owned item per slot, taken exactly
/// once when the slot is driven.
pub struct ParSeq<T> {
    slots: Vec<Mutex<Option<T>>>,
}

impl<T: Send> ParallelIterator for ParSeq<T> {
    type Item = T;

    fn pi_len(&self) -> usize {
        self.slots.len()
    }

    fn pi_run(&self, i: usize) -> Vec<T> {
        vec![self.slots[i]
            .lock()
            .expect("slot mutex poisoned")
            .take()
            .expect("slot driven exactly once")]
    }
}

impl<T: Send> IndexedParallelIterator for ParSeq<T> {}

/// `map` pipeline node.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_run(&self, i: usize) -> Vec<R> {
        self.base.pi_run(i).into_iter().map(&self.f).collect()
    }
}

impl<P, F, R> IndexedParallelIterator for Map<P, F>
where
    P: IndexedParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
}

/// `enumerate` pipeline node (indexed pipelines only).
pub struct Enumerate<P> {
    base: P,
}

impl<P> ParallelIterator for Enumerate<P>
where
    P: IndexedParallelIterator,
{
    type Item = (usize, P::Item);

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_run(&self, i: usize) -> Vec<(usize, P::Item)> {
        // Indexed base: slot i holds exactly item i.
        self.base.pi_run(i).into_iter().map(|x| (i, x)).collect()
    }
}

impl<P> IndexedParallelIterator for Enumerate<P> where P: IndexedParallelIterator {}

/// `flat_map` pipeline node.
pub struct FlatMap<P, F> {
    base: P,
    f: F,
}

impl<P, F, I> ParallelIterator for FlatMap<P, F>
where
    P: ParallelIterator,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(P::Item) -> I + Sync,
{
    type Item = I::Item;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_run(&self, i: usize) -> Vec<I::Item> {
        self.base.pi_run(i).into_iter().flat_map(&self.f).collect()
    }
}

/// Consuming conversion: `into_par_iter()`.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Iter = ParSeq<I::Item>;
    type Item = I::Item;

    fn into_par_iter(self) -> ParSeq<I::Item> {
        ParSeq {
            slots: self.into_iter().map(|x| Mutex::new(Some(x))).collect(),
        }
    }
}

/// Borrowing conversion: `par_iter()`.
pub trait IntoParallelRefIterator<'data> {
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send + 'data;
    /// Iterate by reference.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Iter = <&'data I as IntoParallelIterator>::Iter;
    type Item = <&'data I as IntoParallelIterator>::Item;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Mutably borrowing conversion: `par_iter_mut()`.
pub trait IntoParallelRefMutIterator<'data> {
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send + 'data;
    /// Iterate by mutable reference.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoParallelIterator,
{
    type Iter = <&'data mut I as IntoParallelIterator>::Iter;
    type Item = <&'data mut I as IntoParallelIterator>::Item;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}
