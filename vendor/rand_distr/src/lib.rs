//! Offline stub of `rand_distr`: the `Distribution` trait plus the
//! `Exp` and `Gamma` distributions this workspace samples from.
//!
//! `Exp` uses inverse-CDF sampling; `Gamma` uses the Marsaglia–Tsang
//! squeeze method (with the Ahrens–Dieter boost for shape < 1) over a
//! polar-method standard normal. All draws consume generator output in
//! a deterministic order, so simulations stay reproducible.

use rand::Rng;

pub use rand::distributions::Distribution;

/// Error from invalid distribution parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}
impl std::error::Error for ParamError {}

/// Upstream-compatible error aliases.
pub type ExpError = ParamError;
/// Upstream-compatible error aliases.
pub type GammaError = ParamError;

fn unit_open(rng: &mut (impl Rng + ?Sized)) -> f64 {
    // Uniform in (0, 1]: avoids ln(0).
    let u: f64 = rand::FromRng::from_rng(rng);
    1.0 - u
}

/// Standard normal via the polar (Marsaglia) method. No caching of the
/// second variate — each call consumes a fresh pair so the stream
/// position depends only on call count.
fn standard_normal(rng: &mut (impl Rng + ?Sized)) -> f64 {
    loop {
        let u: f64 = rand::FromRng::from_rng(rng);
        let v: f64 = rand::FromRng::from_rng(rng);
        let x = 2.0 * u - 1.0;
        let y = 2.0 * v - 1.0;
        let s = x * x + y * y;
        if s > 0.0 && s < 1.0 {
            return x * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exp<F = f64> {
    lambda: F,
}

impl Exp<f64> {
    /// New exponential with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, ExpError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ParamError("Exp: lambda must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_open(rng).ln() / self.lambda
    }
}

/// Gamma distribution with `shape` k and `scale` theta (mean
/// `shape * scale`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gamma<F = f64> {
    shape: F,
    scale: F,
}

impl Gamma<f64> {
    /// New gamma with `shape > 0`, `scale > 0`.
    pub fn new(shape: f64, scale: f64) -> Result<Self, GammaError> {
        if shape > 0.0 && shape.is_finite() && scale > 0.0 && scale.is_finite() {
            Ok(Gamma { shape, scale })
        } else {
            Err(ParamError("Gamma: shape and scale must be positive"))
        }
    }
}

impl Distribution<f64> for Gamma<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape < 1.0 {
            // Ahrens–Dieter boost: Gamma(k) = Gamma(k+1) * U^(1/k).
            let boost = unit_open(rng).powf(1.0 / self.shape);
            let g = sample_shape_ge_one(self.shape + 1.0, rng);
            return g * boost * self.scale;
        }
        sample_shape_ge_one(self.shape, rng) * self.scale
    }
}

/// Marsaglia–Tsang for shape >= 1, unit scale.
fn sample_shape_ge_one<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u = unit_open(rng);
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v3;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
        (0..n).map(|_| f()).sum::<f64>() / n as f64
    }

    #[test]
    fn exp_mean_matches() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Exp::new(0.25).unwrap();
        let m = mean_of(40_000, || d.sample(&mut rng));
        assert!((m - 4.0).abs() < 0.1, "mean={m}");
    }

    #[test]
    fn gamma_mean_and_var_match() {
        let mut rng = StdRng::seed_from_u64(13);
        let (k, th) = (3.0, 2.0);
        let d = Gamma::new(k, th).unwrap();
        let xs: Vec<f64> = (0..40_000).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!((m - k * th).abs() < 0.15, "mean={m}");
        assert!((var - k * th * th).abs() < 0.6, "var={var}");
    }

    #[test]
    fn gamma_small_shape() {
        let mut rng = StdRng::seed_from_u64(17);
        let d = Gamma::new(0.5, 1.0).unwrap();
        let m = mean_of(40_000, || d.sample(&mut rng));
        assert!((m - 0.5).abs() < 0.05, "mean={m}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
    }
}
