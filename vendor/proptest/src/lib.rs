//! Offline stub of `proptest`: the `proptest!` macro, range/tuple/vec
//! strategies, and `prop_assert*` macros, backed by a deterministic
//! per-test RNG (seeded from the test's name) instead of upstream's
//! shrinking engine.
//!
//! Failing cases are reported with the drawn inputs (`Debug`), but are
//! **not** shrunk. Case count defaults to 64 and can be set with
//! `#![proptest_config(ProptestConfig::with_cases(n))]` exactly like
//! upstream.

use std::ops::Range;

/// Runner configuration (subset: case count).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator used by the runner (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary byte string (e.g. the test name).
    pub fn from_name(name: &str) -> Self {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for &b in name.as_bytes() {
            state = state.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Upstream proptest's `Strategy` also carries
/// shrinking machinery; this stub only samples.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                ((self.start as u128) + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
uint_strategy!(u8, u16, u32, u64, usize);

macro_rules! sint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}
sint_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `sizes`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty vec size range");
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.sizes.end - self.sizes.start) as u64;
            let len = self.sizes.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Error carried out of a failing property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Result type produced by the instrumented property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Assert inside a property; on failure the runner reports the inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($a), stringify!($b), a, b, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} != {}`\n  both: {:?} ({}:{})",
                stringify!($a),
                stringify!($b),
                a,
                file!(),
                line!()
            )));
        }
    }};
}

/// Define property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in proptest::collection::vec(0u8..4, 1..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let dbg_inputs = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                        $(&$arg),+
                    );
                    #[allow(unused_mut)]
                    let mut body = move || -> $crate::TestCaseResult {
                        { $body }
                        Ok(())
                    };
                    if let Err(e) = body() {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1, config.cases, e.0, dbg_inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult, TestRng,
    };
}

// `proptest::prop_assert!` style paths (used by several call sites)
// resolve through the crate root because `#[macro_export]` places the
// macros there.

#[cfg(test)]
mod tests {
    crate::proptest! {
        #![proptest_config(crate::ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in -5i64..5, f in 0.0f64..1.0) {
            crate::prop_assert!((3..10).contains(&x));
            crate::prop_assert!((-5..5).contains(&y));
            crate::prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vecs_sized(v in crate::collection::vec((0u8..2, 0u64..4), 2..6)) {
            crate::prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in v {
                crate::prop_assert!(a < 2 && b < 4);
            }
        }
    }

    #[test]
    fn deterministic_sampling() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
