//! Offline stub of `criterion`: same macro/builder surface, but each
//! benchmark is run a small fixed number of iterations and the mean
//! wall-clock time is printed. No statistics, plots, or comparisons —
//! just enough to keep `cargo bench` working without the real crate.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations per benchmark (tiny: this stub is about compile/run
/// coverage, not measurement fidelity).
const ITERS: u32 = 10;

/// Top-level benchmark driver.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

/// Throughput annotation (printed, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Function name + parameter.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), param),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render to the printed name.
    fn into_name(self) -> String;
}
impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}
impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}
impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Run the routine `ITERS` times, timing each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..ITERS {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Batched variant: `setup` output feeds `routine`, setup untimed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Batch sizing hint (ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
}

fn run_one(group: Option<&str>, name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters > 0 {
        b.total / b.iters
    } else {
        Duration::ZERO
    };
    match group {
        Some(g) => println!("bench {g}/{name}: mean {mean:?} over {} iters", b.iters),
        None => println!("bench {name}: mean {mean:?} over {} iters", b.iters),
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Record the group's throughput (printed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        println!("bench group {}: throughput {t:?}", self.name);
        self
    }

    /// Override sample count (ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Override measurement time (ignored by the stub).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_one(Some(&self.name), &id.into_name(), |b| f(b));
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        run_one(Some(&self.name), &id.into_name(), |b| f(b, input));
        self
    }

    /// Finish the group (no-op).
    pub fn finish(&mut self) {}
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_one(None, &id.into_name(), |b| f(b));
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the harness passes flags like
            // `--test`; skip the (slow) benches in that mode.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
