//! Offline stub of `serde` built around an in-memory JSON-like value
//! tree instead of upstream's streaming serializer architecture.
//!
//! `Serialize` lowers a type to a [`Value`]; `Deserialize` rebuilds a
//! type from one. The companion `serde_json` stub renders a [`Value`]
//! to JSON text (object keys in declaration order, so output is
//! deterministic) and parses JSON text back into one. The
//! `#[derive(Serialize, Deserialize)]` macros are provided by the
//! sibling `serde_derive` stub and cover the shapes this workspace
//! uses: structs with named fields, tuple/newtype structs, and enums
//! with unit, newtype, and struct variants (externally tagged, like
//! upstream serde's default representation).

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON-like document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used for negative numbers).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered so serialization is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Look up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Error(m.to_string())
    }

    /// "expected X, got Y" helper.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for Error {}

/// Lower `self` to a [`Value`].
pub trait Serialize {
    /// Produce the value tree.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Hook for absent object fields. Only `Option` (and types that
    /// opt in) can be omitted; everything else reports the error.
    fn from_missing(field: &str) -> Result<Self, Error> {
        Err(Error(format!("missing field `{field}`")))
    }
}

/// Derive-support helper: fetch and deserialize a struct field.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(fv) => T::from_value(fv).map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => T::from_missing(name),
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => f as u64,
                    ref other => return Err(Error::expected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) if n <= i64::MAX as u64 => n as i64,
                    Value::Float(f) if f.fract() == 0.0
                        && f >= i64::MIN as f64 && f <= i64::MAX as f64 => f as i64,
                    ref other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Float(f)
                } else if f.is_nan() {
                    // JSON has no non-finite numbers; tag them as strings
                    // so typed round-trips are lossless (upstream serde_json
                    // would reject them outright).
                    Value::Str("NaN".into())
                } else if f > 0.0 {
                    Value::Str("inf".into())
                } else {
                    Value::Str("-inf".into())
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(n) => Ok(n as $t),
                    Value::UInt(n) => Ok(n as $t),
                    Value::Str(ref s) => match s.as_str() {
                        "NaN" => Ok(<$t>::NAN),
                        "inf" => Ok(<$t>::INFINITY),
                        "-inf" => Ok(<$t>::NEG_INFINITY),
                        _ => Err(Error::msg(format!(
                            "expected number, got string `{s}`"))),
                    },
                    ref other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
    fn from_missing(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expect = [$($n),+].len();
                        if items.len() != expect {
                            return Err(Error::msg(format!(
                                "expected {expect}-tuple, got {} items", items.len())));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(Error::expected("array (tuple)", other)),
                }
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, fv)| Ok((k.clone(), V::from_value(fv)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_value(&self) -> Value {
        // Sort keys so maps serialize deterministically.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}
impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, fv)| Ok((k.clone(), V::from_value(fv)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::UInt(3)).unwrap(), Some(3));
        assert_eq!(Option::<u32>::from_missing("x").unwrap(), None);
        assert!(u32::from_missing("x").is_err());
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(u64::from_value(&Value::Int(5)).unwrap(), 5);
        assert!(u64::from_value(&Value::Int(-5)).is_err());
        assert_eq!(f64::from_value(&Value::UInt(2)).unwrap(), 2.0);
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(field::<u64>(&v, "a").unwrap(), 1);
        assert!(field::<u64>(&v, "b").is_err());
        assert_eq!(field::<Option<u64>>(&v, "b").unwrap(), None);
    }
}
