//! Offline stub of `serde_derive`: hand-rolled token parsing (no
//! syn/quote) generating `Serialize`/`Deserialize` impls for the serde
//! stub's value-tree traits.
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! * structs with named fields
//! * tuple structs (newtype structs serialize transparently)
//! * unit structs
//! * enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, matching upstream serde's default)
//!
//! Generics and `#[serde(...)]` attributes are not supported and
//! panic at compile time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Data {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    data: Data,
}

/// Derive `Serialize` (serde-stub value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `Deserialize` (serde-stub value-tree flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&toks, &mut i);

    let kw = ident_at(&toks, i).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_at(&toks, i).expect("expected type name");
    i += 1;

    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is not supported");
    }

    let data = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
            other => panic!("serde stub derive: unexpected struct body {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stub derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde stub derive: cannot derive for `{other}`"),
    };

    Input { name, data }
}

fn ident_at(toks: &[TokenTree], i: usize) -> Option<String> {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Advance past `#[...]` attributes (incl. doc comments) and `pub`
/// visibility (incl. `pub(crate)` and friends).
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                    *i += 1;
                }
                assert!(
                    matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket),
                    "malformed attribute"
                );
                *i += 1;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, ...` field lists, returning the names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name =
            ident_at(&toks, i).unwrap_or_else(|| panic!("expected field name, got {:?}", toks[i]));
        i += 1;
        assert!(
            matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        skip_type(&toks, &mut i);
        fields.push(name);
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Skip a type expression up to a top-level `,` (angle-bracket aware:
/// commas inside `<...>` belong to the type).
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Count comma-separated fields at the top level of a tuple body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_type(&toks, &mut i);
        n += 1;
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i)
            .unwrap_or_else(|| panic!("expected variant name, got {:?}", toks[i]));
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_fields(g.stream());
                i += 1;
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde stub derive: explicit discriminants are not supported");
        }
        variants.push(Variant { name, shape });
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ------------------------------------------------------------- generation

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!("::serde::Value::Object(vec![{pushes}])")
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: String = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k}),"))
                .collect();
            format!("::serde::Value::Array(vec![{items}])")
        }
        Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),")
                        }
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(vec![\
                             (\"{vn}\".to_string(), ::serde::Serialize::to_value(x0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![\
                                 (\"{vn}\".to_string(), ::serde::Value::Array(vec![{items}]))]),",
                                binds.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (\"{vn}\".to_string(), ::serde::Value::Object(vec![{pushes}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(v, \"{f}\")?,"))
                .collect();
            format!(
                "if v.as_object().is_none() {{\n\
                 return Err(::serde::Error::expected(\"object (struct {name})\", v));\n\
                 }}\n\
                 Ok({name} {{ {inits} }})"
            )
        }
        Data::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Data::TupleStruct(n) => {
            let inits: String = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?,"))
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Array(items) if items.len() == {n} => \
                 Ok({name}({inits})),\n\
                 other => Err(::serde::Error::expected(\"array of {n} (struct {name})\", other)),\n\
                 }}"
            )
        }
        Data::UnitStruct => format!(
            "match v {{ ::serde::Value::Null => Ok({name}), \
             other => Err(::serde::Error::expected(\"null (unit struct {name})\", other)) }}"
        ),
        Data::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!("\"{vn}\" => Ok({name}::{vn}),"),
                        Shape::Tuple(1) => format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        ),
                        Shape::Tuple(n) => {
                            let inits: String = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?,"))
                                .collect();
                            format!(
                                "\"{vn}\" => match inner {{\n\
                                 ::serde::Value::Array(items) if items.len() == {n} => \
                                 Ok({name}::{vn}({inits})),\n\
                                 other => Err(::serde::Error::expected(\
                                 \"array of {n} (variant {vn})\", other)),\n\
                                 }},"
                            )
                        }
                        Shape::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(inner, \"{f}\")?,"))
                                .collect();
                            format!("\"{vn}\" => Ok({name}::{vn} {{ {inits} }}),")
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(::serde::Error::msg(format!(\
                 \"unknown unit variant `{{other}}` for enum {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                 let (tag, inner) = &fields[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\n\
                 other => Err(::serde::Error::msg(format!(\
                 \"unknown variant `{{other}}` for enum {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::Error::expected(\"enum {name}\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
