//! Offline stub of `serde_json` for the serde stub's [`Value`] tree:
//! a deterministic JSON emitter (object keys in declaration order,
//! floats via Rust's shortest round-trip formatting) and a strict
//! recursive-descent parser.

use serde::{Deserialize, Serialize, Value};
use std::io::Write;

/// serde_json-compatible error type.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl std::fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}
impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}
impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// serde_json-compatible result alias.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------- emit

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        // Upstream serde_json refuses non-finite floats; emit null so
        // telemetry lines stay valid JSON.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Integral value: keep a trailing `.0` so the number parses
        // back as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => fmt_f64(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(fv, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(fv, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Serialize compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<()> {
    w.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Serialize pretty JSON into a writer.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<()> {
    w.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

// --------------------------------------------------------------- parse

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                c as char, self.i
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.i)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.i
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.i += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.i += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                c if c < 0x80 => s.push(c as char),
                _ => {
                    // Multi-byte UTF-8: find the full sequence.
                    let start = self.i - 1;
                    let len = utf8_len(c);
                    let bytes = self
                        .b
                        .get(start..start + len)
                        .ok_or_else(|| Error::msg("truncated UTF-8"))?;
                    let chunk = std::str::from_utf8(bytes)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.i = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| Error::msg("invalid number bytes"))?;
        // Integer-looking tokens that overflow i64/u64 fall back to f64:
        // Rust's `Display` for f64 never uses exponent notation, so large
        // floats (|x| ≥ 2^63) serialize as plain digit strings and must
        // still round-trip through the parser.
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at {}", self.i))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at {}", self.i))),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parse a JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(Error::msg(format!("trailing data at byte {}", p.i)));
    }
    Ok(v)
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    Ok(T::from_value(&parse_value(s)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
    }

    #[test]
    fn parse_nested() {
        let v = parse_value(r#"{"a": [1, -2, 3.5], "b": {"c": null}, "d": "x"}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Value::Array(vec![Value::UInt(1), Value::Int(-2), Value::Float(3.5)])
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap(), &Value::Null);
    }

    #[test]
    fn huge_integer_tokens_fall_back_to_float() {
        // `Display` for f64 never uses exponent notation, so floats with
        // |x| >= 2^63 serialize as plain digit strings; parsing must fall
        // back to f64 instead of failing the i64/u64 conversion, and the
        // bytes must round-trip exactly (checkpoint digests depend on it).
        for f in [-6.895523070677849e19_f64, 3.4e20, 1.8446744073709552e19] {
            let s = to_string(&f).unwrap();
            assert!(!s.contains(['e', 'E', '.']), "plain digits: {s}");
            let v = parse_value(&s).unwrap();
            assert_eq!(v, Value::Float(f));
            assert_eq!(to_string(&v).unwrap(), s, "byte-stable round trip");
        }
    }

    #[test]
    fn from_str_typed() {
        let xs: Vec<u64> = from_str("[1,2,3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        let o: Option<f64> = from_str("null").unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn unicode_string() {
        let v = parse_value(r#""héllo A""#).unwrap();
        assert_eq!(v, Value::Str("héllo A".to_string()));
        let s = to_string(&"héllo").unwrap();
        assert_eq!(parse_value(&s).unwrap(), Value::Str("héllo".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
    }
}
